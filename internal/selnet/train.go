package selnet

import (
	"math"
	"math/rand"

	"selnet/internal/autodiff"
	"selnet/internal/nn"
	"selnet/internal/tensor"
	"selnet/internal/vecdata"
)

// LossKind selects the estimation loss; the paper motivates Huber on logs
// (Sec. 5.1) and this switch powers the loss ablation bench.
type LossKind int

// Supported estimation losses, all on log-padded values.
const (
	LossHuberLog LossKind = iota
	LossL1Log
	LossL2Log
)

// estLoss builds the configured estimation-loss node.
func estLoss(tp *autodiff.Tape, tc TrainConfig, yhat, y *autodiff.Node) *autodiff.Node {
	switch tc.Loss {
	case LossL1Log:
		return tp.L1LogLoss(yhat, y, tc.LogEps)
	case LossL2Log:
		return tp.L2LogLoss(yhat, y, tc.LogEps)
	default:
		return tp.HuberLogLoss(yhat, y, tc.HuberDelta, tc.LogEps)
	}
}

// Fit trains the single model on labelled queries with the combined
// objective J = J_est + λ·J_AE (Eq. 4). The autoencoder is first
// pretrained on database objects (Sec. 5.2: "we pretrain the AE on all
// the objects in D, and then continue to train the AE with the queries").
// If valid is non-empty, the parameters with the best validation loss are
// kept.
func (n *Net) Fit(tc TrainConfig, db *vecdata.Database, train, valid []vecdata.Query) {
	if len(train) == 0 {
		panic("selnet: no training queries")
	}
	// Training mutates parameters; drop compiled plans so post-training
	// inference recompiles against the settled weights.
	n.DropPlans()
	rng := rand.New(rand.NewSource(tc.Seed))
	n.pretrainAE(rng, tc, db)

	x, t, y := vecdata.Matrices(train)
	opt := nn.NewAdam(tc.LR)
	nTrain := len(train)
	idx := make([]int, nTrain)
	for i := range idx {
		idx[i] = i
	}
	var best []*tensor.Dense
	bestLoss := math.Inf(1)
	snapshot := func() {
		if len(valid) == 0 {
			return
		}
		l := n.Loss(tc, valid)
		if l < bestLoss {
			bestLoss = l
			best = best[:0]
			for _, p := range n.Params() {
				best = append(best, p.Value.Clone())
			}
		}
	}
	for e := 0; e < tc.Epochs; e++ {
		rng.Shuffle(nTrain, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for s := 0; s < nTrain; s += tc.Batch {
			end := s + tc.Batch
			if end > nTrain {
				end = nTrain
			}
			b := idx[s:end]
			tp := autodiff.NewTape()
			xb := tp.Input(tensor.GatherRows(x, b))
			tb := tp.Input(tensor.GatherRows(t, b))
			yb := tp.Input(tensor.GatherRows(y, b))
			yhat, aeLoss := n.forward(tp, xb, tb)
			loss := tp.Add(
				estLoss(tp, tc, yhat, yb),
				tp.Scale(aeLoss, n.cfg.Lambda),
			)
			tp.Backward(loss)
			opt.Step(n.Params())
		}
		if tc.EvalEvery > 0 && (e+1)%tc.EvalEvery == 0 {
			snapshot()
		}
	}
	snapshot()
	if best != nil {
		for i, p := range n.Params() {
			p.Value.CopyFrom(best[i])
		}
	}
	// Plans compiled mid-training (e.g. by a concurrent evaluation) hold
	// weight panels packed from now-stale parameters; drop them so the
	// settled weights are re-packed on next use.
	n.DropPlans()
}

// pretrainAE runs autoencoder pretraining on a database sample.
func (n *Net) pretrainAE(rng *rand.Rand, tc TrainConfig, db *vecdata.Database) {
	if tc.AEPretrainEpochs <= 0 || db == nil {
		return
	}
	m := tc.AEPretrainSample
	if m <= 0 || m > db.Size() {
		m = db.Size()
	}
	sample := tensor.New(m, db.Dim)
	perm := rng.Perm(db.Size())[:m]
	for i, pi := range perm {
		copy(sample.Row(i), db.Vecs[pi])
	}
	n.ae.Pretrain(rng, sample, tc.AEPretrainEpochs, tc.Batch, tc.LR)
}

// Loss computes the estimation loss (without the AE term) on a query set;
// used for validation snapshots and the update trigger.
func (n *Net) Loss(tc TrainConfig, queries []vecdata.Query) float64 {
	x, t, y := vecdata.Matrices(queries)
	tp := autodiff.NewTape()
	yhat, _ := n.forward(tp, tp.Input(x), tp.Input(t))
	return estLoss(tp, tc, yhat, tp.Input(y)).Scalar()
}

// MAE computes the mean absolute error of the estimator on a query set;
// the update procedure of Sec. 5.4 uses it as its accuracy trigger.
func (n *Net) MAE(queries []vecdata.Query) float64 {
	if len(queries) == 0 {
		return 0
	}
	x, _, _ := vecdata.Matrices(queries)
	ts := make([]float64, len(queries))
	for i, q := range queries {
		ts[i] = q.T
	}
	pred := n.EstimateBatch(x, ts)
	var s float64
	for i, q := range queries {
		s += math.Abs(pred[i] - q.Y)
	}
	return s / float64(len(queries))
}

// FitEpochsUntilNoImprovement continues training from the current
// parameters until the validation MAE fails to improve for patience
// consecutive epochs (the incremental-learning loop of Sec. 5.4). The
// best-validation parameters seen (including the starting ones) are
// restored at the end, so the validation MAE never degrades. It returns
// the number of epochs run.
func (n *Net) FitEpochsUntilNoImprovement(tc TrainConfig, train, valid []vecdata.Query, patience, maxEpochs int) int {
	rng := rand.New(rand.NewSource(tc.Seed + 7))
	x, t, y := vecdata.Matrices(train)
	opt := nn.NewAdam(tc.LR)
	nTrain := len(train)
	idx := make([]int, nTrain)
	for i := range idx {
		idx[i] = i
	}
	bestMAE := n.MAE(valid)
	best := snapshotParams(n.Params())
	bad := 0
	epochs := 0
	for epochs < maxEpochs {
		rng.Shuffle(nTrain, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for s := 0; s < nTrain; s += tc.Batch {
			end := s + tc.Batch
			if end > nTrain {
				end = nTrain
			}
			b := idx[s:end]
			tp := autodiff.NewTape()
			yhat, aeLoss := n.forward(tp, tp.Input(tensor.GatherRows(x, b)), tp.Input(tensor.GatherRows(t, b)))
			loss := tp.Add(
				estLoss(tp, tc, yhat, tp.Input(tensor.GatherRows(y, b))),
				tp.Scale(aeLoss, n.cfg.Lambda),
			)
			tp.Backward(loss)
			opt.Step(n.Params())
		}
		epochs++
		// The epoch's steps mutated the parameters in place; the MAE
		// below compiles fresh plans, which pack the weights they see,
		// so the previous epoch's plans must go first.
		n.DropPlans()
		mae := n.MAE(valid)
		if mae < bestMAE-1e-12 {
			bestMAE = mae
			best = snapshotParams(n.Params())
			bad = 0
		} else {
			bad++
			if bad >= patience {
				break
			}
		}
	}
	restoreParams(n.Params(), best)
	n.DropPlans() // the restore mutated parameters under compiled plans
	return epochs
}

// snapshotParams clones the current parameter values.
func snapshotParams(params []*nn.Param) []*tensor.Dense {
	out := make([]*tensor.Dense, len(params))
	for i, p := range params {
		out[i] = p.Value.Clone()
	}
	return out
}

// restoreParams copies snapshot values back into the parameters.
func restoreParams(params []*nn.Param, snap []*tensor.Dense) {
	for i, p := range params {
		p.Value.CopyFrom(snap[i])
	}
}
