package selnet

import (
	"math"

	"selnet/internal/vecdata"
)

// UpdateConfig parameterizes the incremental-learning procedure of
// Sec. 5.4.
type UpdateConfig struct {
	// DeltaU is the MAE-change threshold δ_U: if the refreshed validation
	// MAE differs from the reference MAE by no more than this, the model
	// is left as-is.
	DeltaU float64
	// BaselineMAE, when positive, is the "original MAE" the paper compares
	// against — the validation MAE recorded when the model was last
	// (re)trained. This makes slow drift across many small updates
	// accumulate until it crosses δ_U. When zero, the comparison falls
	// back to the MAE immediately before the label refresh (per-operation
	// delta only).
	BaselineMAE float64
	// Patience is the number of consecutive non-improving epochs that stops
	// incremental training (paper: 3).
	Patience int
	// MaxEpochs bounds the incremental training loop.
	MaxEpochs int
}

// DefaultUpdateConfig mirrors the paper's procedure.
func DefaultUpdateConfig() UpdateConfig {
	return UpdateConfig{DeltaU: 1.0, Patience: 3, MaxEpochs: 30}
}

// UpdateResult reports what the update handler did.
type UpdateResult struct {
	// Retrained is false when the δ_U check decided the model was still
	// accurate enough.
	Retrained bool
	// EpochsRun counts incremental epochs (0 when not retrained).
	EpochsRun int
	// MAEBefore and MAEAfter are validation MAEs against the refreshed
	// labels, before and after incremental training.
	MAEBefore, MAEAfter float64
}

// HandleUpdate implements Sec. 5.4 for the single model. db must already
// reflect the update. The procedure: (1) refresh validation labels and
// re-test MAE; (2) if the change is within δ_U, skip; (3) otherwise
// refresh training labels too and continue training from the current
// parameters until validation MAE stops improving for Patience epochs.
// train and valid are relabelled in place.
func (n *Net) HandleUpdate(tc TrainConfig, uc UpdateConfig, db *vecdata.Database, train, valid []vecdata.Query) UpdateResult {
	n.DropPlans()          // incremental training may mutate parameters
	oldMAE := n.MAE(valid) // MAE against stale labels
	vecdata.Relabel(valid, db)
	newMAE := n.MAE(valid) // MAE against refreshed labels
	res := UpdateResult{MAEBefore: newMAE, MAEAfter: newMAE}
	ref := oldMAE
	if uc.BaselineMAE > 0 {
		ref = uc.BaselineMAE
	}
	if math.Abs(newMAE-ref) <= uc.DeltaU {
		return res
	}
	vecdata.Relabel(train, db)
	res.Retrained = true
	res.EpochsRun = n.FitEpochsUntilNoImprovement(tc, train, valid, uc.Patience, uc.MaxEpochs)
	res.MAEAfter = n.MAE(valid)
	return res
}

// HandleUpdate implements Sec. 5.4 for the partitioned model. The caller
// must first register the physical change via ApplyInsert/ApplyDelete (so
// cluster-local labels stay correct) and apply it to db. Incremental
// training reuses the joint objective from the current parameters.
func (p *Partitioned) HandleUpdate(tc TrainConfig, uc UpdateConfig, db *vecdata.Database, train, valid []vecdata.Query) UpdateResult {
	p.DropPlans() // incremental training may mutate parameters
	oldMAE := p.MAE(valid)
	vecdata.Relabel(valid, db)
	newMAE := p.MAE(valid)
	res := UpdateResult{MAEBefore: newMAE, MAEAfter: newMAE}
	ref := oldMAE
	if uc.BaselineMAE > 0 {
		ref = uc.BaselineMAE
	}
	if math.Abs(newMAE-ref) <= uc.DeltaU {
		return res
	}
	vecdata.Relabel(train, db)
	res.Retrained = true
	// Continue joint training epoch by epoch with the patience rule. We
	// reuse Fit with a single epoch per call to keep the incremental
	// semantics ("the training does not start from scratch").
	bestMAE := newMAE
	best := snapshotParams(p.Params())
	bad := 0
	itc := tc
	itc.Epochs = 1
	itc.EvalEvery = 0
	itc.AEPretrainEpochs = 0
	pcfgPretrain := p.pcfg.PretrainEpochs
	p.pcfg.PretrainEpochs = 0 // no local re-pretraining during updates
	defer func() { p.pcfg.PretrainEpochs = pcfgPretrain }()
	for res.EpochsRun < uc.MaxEpochs {
		itc.Seed = tc.Seed + int64(res.EpochsRun)
		p.Fit(itc, nil, train, nil)
		res.EpochsRun++
		mae := p.MAE(valid)
		if mae < bestMAE-1e-12 {
			bestMAE = mae
			best = snapshotParams(p.Params())
			bad = 0
		} else {
			bad++
			if bad >= uc.Patience {
				break
			}
		}
	}
	restoreParams(p.Params(), best)
	p.DropPlans() // restore mutated parameters under the last epoch's plans
	res.MAEAfter = p.MAE(valid)
	return res
}
