package selnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"selnet/internal/autodiff"
	"selnet/internal/tensor"
)

// The Softmax ablation variant must keep every structural invariant:
// tau in [0, TMax] with fixed endpoints, monotone estimates.
func TestSoftmaxTauVariantInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	cfg := tinyConfig(2.0)
	cfg.SoftmaxTau = true
	net := NewNet(rng, 4, cfg)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		tau, p := net.ControlPoints(x)
		if tau[0] != 0 || math.Abs(tau[len(tau)-1]-2.0) > 1e-9 {
			return false
		}
		for i := 1; i < len(tau); i++ {
			if tau[i] < tau[i-1]-1e-12 {
				return false
			}
		}
		for i := 1; i < len(p); i++ {
			if p[i] < p[i-1]-1e-12 {
				return false
			}
		}
		t1 := r.Float64()
		t2 := t1 + r.Float64()
		return net.Estimate(x, t1) <= net.Estimate(x, t2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Softmax and Norml2 variants must actually differ (the ablation is not a
// no-op).
func TestSoftmaxTauDiffersFromNorml2(t *testing.T) {
	rngA := rand.New(rand.NewSource(81))
	rngB := rand.New(rand.NewSource(81)) // identical weights
	cfgA := tinyConfig(2.0)
	cfgB := tinyConfig(2.0)
	cfgB.SoftmaxTau = true
	a := NewNet(rngA, 3, cfgA)
	b := NewNet(rngB, 3, cfgB)
	x := []float64{0.4, -0.2, 1.1}
	tauA, _ := a.ControlPoints(x)
	tauB, _ := b.ControlPoints(x)
	same := true
	for i := range tauA {
		if math.Abs(tauA[i]-tauB[i]) > 1e-9 {
			same = false
		}
	}
	if same {
		t.Fatalf("softmax variant produced identical tau")
	}
}

// estLoss must dispatch to the configured loss.
func TestEstLossDispatch(t *testing.T) {
	yhatV := tensor.FromRows([][]float64{{2}, {9}})
	yV := tensor.FromRows([][]float64{{4}, {3}})
	tcBase := TrainConfig{HuberDelta: 1.345, LogEps: 1e-3}
	vals := map[LossKind]float64{}
	for _, kind := range []LossKind{LossHuberLog, LossL1Log, LossL2Log} {
		tc := tcBase
		tc.Loss = kind
		tp := autodiff.NewTape()
		vals[kind] = estLoss(tp, tc, tp.Input(yhatV), tp.Input(yV)).Scalar()
	}
	// Reference values computed directly.
	r1 := math.Log(4+1e-3) - math.Log(2+1e-3)
	r2 := math.Log(3+1e-3) - math.Log(9+1e-3)
	wantL1 := (math.Abs(r1) + math.Abs(r2)) / 2
	wantL2 := (r1*r1 + r2*r2) / 2
	huber := func(r float64) float64 {
		if math.Abs(r) <= 1.345 {
			return r * r / 2
		}
		return 1.345 * (math.Abs(r) - 1.345/2)
	}
	wantHuber := (huber(r1) + huber(r2)) / 2
	if math.Abs(vals[LossL1Log]-wantL1) > 1e-12 {
		t.Fatalf("L1 loss %v, want %v", vals[LossL1Log], wantL1)
	}
	if math.Abs(vals[LossL2Log]-wantL2) > 1e-12 {
		t.Fatalf("L2 loss %v, want %v", vals[LossL2Log], wantL2)
	}
	if math.Abs(vals[LossHuberLog]-wantHuber) > 1e-12 {
		t.Fatalf("Huber loss %v, want %v", vals[LossHuberLog], wantHuber)
	}
	// The three losses must genuinely differ on this input.
	if vals[LossL1Log] == vals[LossL2Log] || vals[LossHuberLog] == vals[LossL2Log] {
		t.Fatalf("loss kinds collapsed: %v", vals)
	}
}

// Training with each loss kind must converge without NaNs.
func TestFitWithAlternativeLosses(t *testing.T) {
	db, wl := testWorkload(82, 300, 4, 10, 4)
	rng := rand.New(rand.NewSource(83))
	train, valid, _ := wl.Split(rng)
	for _, kind := range []LossKind{LossL1Log, LossL2Log} {
		net := NewNet(rand.New(rand.NewSource(84)), db.Dim, tinyConfig(wl.TMax))
		tc := tinyTrainConfig()
		tc.Epochs = 6
		tc.Loss = kind
		net.Fit(tc, db, train, valid)
		mae := net.MAE(valid)
		if math.IsNaN(mae) || math.IsInf(mae, 0) {
			t.Fatalf("loss kind %d diverged", kind)
		}
	}
}
