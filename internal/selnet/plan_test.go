package selnet

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"selnet/internal/autodiff"
	"selnet/internal/infer"
	"selnet/internal/tensor"
)

// planTestNet returns an untrained net with random weights: estimation
// correctness and cost do not depend on training.
func planTestNet(seed int64, dim int) *Net {
	return NewNet(rand.New(rand.NewSource(seed)), dim, tinyConfig(1))
}

func randQueries(seed int64, n, dim int) (*tensor.Dense, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(n, dim)
	for i := range x.Data() {
		x.Data()[i] = rng.Float64()
	}
	ts := make([]float64, n)
	for i := range ts {
		// Cover in-range, clamped-low, and clamped-high thresholds.
		ts[i] = rng.Float64()*1.6 - 0.3
	}
	return x, ts
}

// The plan path must reproduce the tape path bit for bit: same kernels,
// same order, same buffers semantics.
func TestPlanMatchesTapePath(t *testing.T) {
	for _, tc := range []struct {
		name string
		mod  func(*Config)
	}{
		{"default", func(*Config) {}},
		{"softmax-tau", func(c *Config) { c.SoftmaxTau = true }},
		{"query-independent-tau", func(c *Config) { c.QueryDependentTau = false }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tinyConfig(1)
			tc.mod(&cfg)
			n := NewNet(rand.New(rand.NewSource(7)), 5, cfg)
			for _, rows := range []int{1, 2, 3, 64, 65, 200} {
				x, ts := randQueries(int64(rows), rows, 5)
				got := n.EstimateBatch(x, ts)
				want := n.estimateBatchTape(x, ts)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("rows=%d row %d: plan %v, tape %v", rows, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestEstimateMatchesBatch(t *testing.T) {
	n := planTestNet(1, 6)
	x, ts := randQueries(2, 32, 6)
	batch := n.EstimateBatch(x, ts)
	for i := range ts {
		if got := n.Estimate(x.Row(i), ts[i]); got != batch[i] {
			t.Fatalf("row %d: Estimate %v, EstimateBatch %v", i, got, batch[i])
		}
	}
}

func TestControlPointsOnPlanPath(t *testing.T) {
	n := planTestNet(3, 4)
	q := []float64{0.1, 0.7, 0.3, 0.9}
	tau, p := n.ControlPoints(q)
	if len(tau) != n.cfg.L+2 || len(p) != n.cfg.L+2 {
		t.Fatalf("lengths %d/%d, want %d", len(tau), len(p), n.cfg.L+2)
	}
	// Reference: the tape path's control points.
	tp := autodiff.NewTape()
	tauN, pN := n.controlPointsInference(tp, tp.Input(tensor.RowVector(q)))
	for i := range tau {
		if tau[i] != tauN.Value.At(0, i) || p[i] != pN.Value.At(0, i) {
			t.Fatalf("control point %d differs from tape path", i)
		}
	}
	// Monotone, τ ends at TMax — the Lemma 1 structure.
	for i := 1; i < len(tau); i++ {
		if tau[i] < tau[i-1] || p[i] < p[i-1] {
			t.Fatalf("control points not monotone at %d", i)
		}
	}
	if math.Abs(tau[len(tau)-1]-n.cfg.TMax) > 1e-9 {
		t.Fatalf("tau end %v, want TMax %v", tau[len(tau)-1], n.cfg.TMax)
	}
}

func TestPlanSurvivesRepeatedUse(t *testing.T) {
	n := planTestNet(4, 5)
	x, ts := randQueries(5, 8, 5)
	want := n.EstimateBatch(x, ts)
	for i := 0; i < 50; i++ {
		got := n.EstimateBatch(x, ts)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("call %d row %d drifted: %v != %v", i, j, got[j], want[j])
			}
		}
	}
	st := n.PlanStats()
	if st.Checkouts != 51 {
		t.Fatalf("checkouts = %d, want 51", st.Checkouts)
	}
	if st.Compiles != 1 {
		t.Fatalf("compiles = %d, want 1 (plans must be reused)", st.Compiles)
	}
}

func TestDropPlansRecompilesConsistently(t *testing.T) {
	n := planTestNet(6, 5)
	x, ts := randQueries(7, 4, 5)
	want := n.EstimateBatch(x, ts)
	n.DropPlans()
	got := n.EstimateBatch(x, ts)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d after DropPlans: %v != %v", i, got[i], want[i])
		}
	}
	if st := n.PlanStats(); st.Drops != 1 || st.Compiles != 2 {
		t.Fatalf("stats %+v, want 1 drop, 2 compiles", st)
	}
}

// Zero steady-state allocations on the plan path — the point of the
// whole engine. Warm-up happens inside AllocsPerRun's untimed first run
// (which compiles the plans).
func TestEstimateBatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations")
	}
	n := planTestNet(8, 16)
	for _, rows := range []int{1, 64} {
		x, ts := randQueries(int64(rows), rows, 16)
		out := make([]float64, rows)
		n.EstimateBatchInto(out, x, ts) // compile outside the measurement
		if got := testing.AllocsPerRun(100, func() {
			n.EstimateBatchInto(out, x, ts)
		}); got != 0 {
			t.Fatalf("batch-%d EstimateBatchInto allocates %v per run, want 0", rows, got)
		}
	}
	q := make([]float64, 16)
	if got := testing.AllocsPerRun(100, func() {
		n.Estimate(q, 0.5)
	}); got != 0 {
		t.Fatalf("Estimate allocates %v per run, want 0", got)
	}
}

func TestPartitionedEstimateBatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations")
	}
	db, wl := testWorkload(31, 300, 8, 8, 4)
	p := NewPartitioned(rand.New(rand.NewSource(32)), db, tinyPartitionedConfig(wl.TMax))
	for _, rows := range []int{1, 64} {
		x, ts := randQueries(int64(rows), rows, 8)
		for i := range ts {
			ts[i] *= wl.TMax
		}
		out := make([]float64, rows)
		p.EstimateBatchInto(out, x, ts)
		if got := testing.AllocsPerRun(100, func() {
			p.EstimateBatchInto(out, x, ts)
		}); got != 0 {
			t.Fatalf("batch-%d partitioned EstimateBatchInto allocates %v per run, want 0", rows, got)
		}
	}
	q := make([]float64, 8)
	p.Estimate(q, wl.TMax/2)
	if got := testing.AllocsPerRun(100, func() {
		p.Estimate(q, wl.TMax/2)
	}); got != 0 {
		t.Fatalf("partitioned Estimate allocates %v per run, want 0", got)
	}
}

// The partitioned plan path must match the definition: the indicator-
// gated sum of the local (tape-path) estimates.
func TestPartitionedPlanMatchesLocalTapes(t *testing.T) {
	db, wl := testWorkload(33, 250, 6, 8, 4)
	p := NewPartitioned(rand.New(rand.NewSource(34)), db, tinyPartitionedConfig(wl.TMax))
	x, ts := randQueries(35, 40, 6)
	for i := range ts {
		ts[i] *= wl.TMax
	}
	got := p.EstimateBatch(x, ts)
	for i := range ts {
		ind := p.part.Indicator(x.Row(i), ts[i])
		tc := clamp(ts[i], 0, p.pcfg.Model.TMax)
		var want float64
		for ci, active := range ind {
			if !active {
				continue
			}
			want += p.locals[ci].estimateBatchTape(tensor.RowVector(x.Row(i)), []float64{tc})[0]
		}
		if math.Abs(got[i]-want) > 1e-12 {
			t.Fatalf("row %d: plan %v, local tapes %v", i, got[i], want)
		}
		if e := p.Estimate(x.Row(i), ts[i]); e != got[i] {
			t.Fatalf("row %d: Estimate %v != EstimateBatch %v", i, e, got[i])
		}
	}
}

// Concurrent estimates racing DropPlans (the hot-swap invalidation)
// must stay correct: parameters never change here, so every result must
// equal the reference regardless of which compiled generation served
// it. Run with -race in CI.
func TestConcurrentEstimateDuringDropPlans(t *testing.T) {
	n := planTestNet(9, 8)
	x, ts := randQueries(10, 16, 8)
	want := n.estimateBatchTape(x, ts)
	stop := make(chan struct{})
	var dropper sync.WaitGroup
	dropper.Add(1)
	go func() {
		defer dropper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				n.DropPlans()
			}
		}
	}()
	var estimators sync.WaitGroup
	for g := 0; g < 4; g++ {
		estimators.Add(1)
		go func(seed int) {
			defer estimators.Done()
			out := make([]float64, len(ts))
			for i := 0; i < 200; i++ {
				n.EstimateBatchInto(out, x, ts)
				for j := range want {
					if out[j] != want[j] {
						t.Errorf("goroutine %d call %d row %d: %v != %v", seed, i, j, out[j], want[j])
						return
					}
				}
			}
		}(g)
	}
	estimators.Wait()
	close(stop)
	dropper.Wait()
}

// ----------------------------------------------------------------------------
// Tape-vs-plan benchmarks: the acceptance numbers for the plan engine.

func benchPlanNet() *Net {
	cfg := DefaultConfig()
	cfg.TMax = 1
	return NewNet(rand.New(rand.NewSource(1)), 16, cfg)
}

func BenchmarkNetEstimatePlan(b *testing.B) {
	n := benchPlanNet()
	q := make([]float64, 16)
	for i := range q {
		q[i] = rand.New(rand.NewSource(2)).Float64()
	}
	n.Estimate(q, 0.5) // compile
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Estimate(q, 0.5)
	}
}

// BenchmarkNetEstimatePlanKernels runs the single-query plan path with
// per-kernel timing enabled and reports each kernel's attributed time
// and call count as custom metrics (kernel:<name>:ns/op,
// kernel:<name>:calls/op) that benchjson folds into the kernel_timings
// section of BENCH_infer.json. Also guards that the timed path itself
// stays allocation-free.
func BenchmarkNetEstimatePlanKernels(b *testing.B) {
	n := benchPlanNet()
	q := make([]float64, 16)
	for i := range q {
		q[i] = rand.New(rand.NewSource(2)).Float64()
	}
	n.Estimate(q, 0.5) // compile
	infer.SetKernelTiming(true)
	defer infer.SetKernelTiming(false)
	infer.ResetKernelStats() // per-trial: the fn is re-invoked for each b.N
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Estimate(q, 0.5)
	}
	b.StopTimer()
	for _, k := range infer.KernelStats() {
		if k.Calls == 0 {
			continue
		}
		b.ReportMetric(float64(k.Nanos)/float64(b.N), "kernel:"+k.Kernel+":ns/op")
		b.ReportMetric(float64(k.Calls)/float64(b.N), "kernel:"+k.Kernel+":calls/op")
	}
}

func BenchmarkNetEstimateTape(b *testing.B) {
	n := benchPlanNet()
	x, _ := randQueries(2, 1, 16)
	ts := []float64{0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.estimateBatchTape(x, ts)
	}
}

func BenchmarkNetEstimateBatch64Plan(b *testing.B) {
	n := benchPlanNet()
	x, ts := randQueries(3, 64, 16)
	out := make([]float64, 64)
	n.EstimateBatchInto(out, x, ts) // compile
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.EstimateBatchInto(out, x, ts)
	}
}

func BenchmarkNetEstimateBatch64Tape(b *testing.B) {
	n := benchPlanNet()
	x, ts := randQueries(3, 64, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.estimateBatchTape(x, ts)
	}
}
