package selnet

import (
	"bytes"
	"fmt"
	"math/rand"
)

// Clone returns a deep copy of the model: a freshly constructed network
// of the same architecture with the parameter values (including the
// autoencoder's) copied over. The clone shares nothing mutable with the
// original, so it can be retrained — the shadow-retraining step of the
// ingest pipeline — while the original keeps serving estimates.
func (n *Net) Clone() *Net {
	// The RNG only seeds initial weights, which the copy overwrites.
	c := NewNet(rand.New(rand.NewSource(0)), n.dim, n.cfg)
	src, dst := n.Params(), c.Params()
	for i := range src {
		dst[i].Value.CopyFrom(src[i].Value)
	}
	c.name = n.name
	return c
}

// Clone returns a deep copy of the partitioned model — shared
// autoencoder, local heads, partitioning geometry and cluster member
// vectors — via an in-memory Save/Load round trip, so the clone is
// exactly what a freshly loaded snapshot would be. Cluster bookkeeping
// (ApplyInsert/ApplyDelete) and retraining on the clone never touch the
// original.
func (p *Partitioned) Clone() (*Partitioned, error) {
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		return nil, fmt.Errorf("selnet: clone partitioned: %w", err)
	}
	c, err := LoadPartitioned(&buf)
	if err != nil {
		return nil, fmt.Errorf("selnet: clone partitioned: %w", err)
	}
	return c, nil
}

// CloneEstimator implements the serving layer's clone capability; the
// registry and ingest pipeline use it without knowing the concrete type.
func (n *Net) CloneEstimator() any { return n.Clone() }

// CloneEstimator implements the serving layer's clone capability. A
// failed round-trip clone returns nil, which callers treat as
// not-cloneable.
func (p *Partitioned) CloneEstimator() any {
	c, err := p.Clone()
	if err != nil {
		return nil
	}
	return c
}
