package selnet

import (
	"fmt"
	"math"
	"math/rand"

	"selnet/internal/autodiff"
	"selnet/internal/distance"
	"selnet/internal/nn"
	"selnet/internal/partition"
	"selnet/internal/tensor"
	"selnet/internal/vecdata"
)

// PartitionedConfig configures the full SelNet of Sec. 5.3: the database
// is split into K clusters, one local model is trained per cluster, and
// the global estimate is the indicator-gated sum of local estimates.
type PartitionedConfig struct {
	Model Config
	// K is the number of clusters (paper default: 3).
	K int
	// Ratio is the cover-tree expansion bound r (subtrees with fewer than
	// Ratio*|D| points are not expanded).
	Ratio float64
	// Method selects the partitioning strategy (Table 10).
	Method partition.Method
	// Beta weights the local losses in the joint objective (paper: 0.1).
	Beta float64
	// PretrainEpochs is T, the per-local pretraining budget before joint
	// training (paper: 300; scaled here).
	PretrainEpochs int
}

// DefaultPartitionedConfig mirrors the paper's defaults at harness scale.
func DefaultPartitionedConfig() PartitionedConfig {
	return PartitionedConfig{
		Model:          DefaultConfig(),
		K:              3,
		Ratio:          0.1,
		Method:         partition.CoverTree,
		Beta:           0.1,
		PretrainEpochs: 10,
	}
}

// Partitioned is the full SelNet estimator fˆ* = Σ_i f_c(x,t)[i]·fˆ(i).
type Partitioned struct {
	pcfg PartitionedConfig
	dim  int
	dist distance.Func

	ae     *nn.Autoencoder
	locals []*Net
	part   *partition.Partitioning
	// clusterVecs holds each cluster's member vectors (owned copies), so
	// local ground truth stays computable across database updates.
	clusterVecs [][][]float64

	plans partPlanState // compiled inference plans, built lazily (plan.go)
}

// NewPartitioned builds the partitioned estimator over db's current
// contents. Model networks are initialized; call Fit to train.
func NewPartitioned(rng *rand.Rand, db *vecdata.Database, pcfg PartitionedConfig) *Partitioned {
	part := partition.Build(rng, db, pcfg.K, pcfg.Ratio, pcfg.Method)
	ae := nn.NewAutoencoder(rng, db.Dim, pcfg.Model.AEHidden, pcfg.Model.AELatent)
	p := &Partitioned{
		pcfg: pcfg,
		dim:  db.Dim,
		dist: db.Dist,
		ae:   ae,
		part: part,
	}
	for ci, cluster := range part.Clusters {
		p.locals = append(p.locals, NewNetWithAE(rng, db.Dim, pcfg.Model, ae))
		vecs := make([][]float64, 0, len(cluster.Members))
		for _, m := range cluster.Members {
			vecs = append(vecs, append([]float64(nil), db.Vecs[m]...))
		}
		p.clusterVecs = append(p.clusterVecs, vecs)
		_ = ci
	}
	return p
}

// K returns the number of clusters actually built.
func (p *Partitioned) K() int { return len(p.locals) }

// PartitionOf attributes a query to the cluster that owns it (see
// partition.PrimaryRegion); -1 when the partitioning carries no
// geometry (random method). The serving layer's shadow scorer uses
// this to break q-errors down by region.
func (p *Partitioned) PartitionOf(x []float64, t float64) int {
	return p.part.PrimaryRegion(x, t)
}

// Dim returns the query dimensionality.
func (p *Partitioned) Dim() int { return p.dim }

// TMax returns the maximum supported threshold.
func (p *Partitioned) TMax() float64 { return p.pcfg.Model.TMax }

// localLabel computes the exact selectivity of (x, t) within cluster ci.
func (p *Partitioned) localLabel(ci int, x []float64, t float64) float64 {
	var count float64
	for _, v := range p.clusterVecs[ci] {
		if p.dist.Distance(x, v) <= t {
			count++
		}
	}
	return count
}

// localQueries rewrites a query set with cluster-local labels.
func (p *Partitioned) localQueries(ci int, queries []vecdata.Query) []vecdata.Query {
	out := make([]vecdata.Query, len(queries))
	for i, q := range queries {
		out[i] = vecdata.Query{X: q.X, T: q.T, Y: p.localLabel(ci, q.X, q.T)}
	}
	return out
}

// Params returns the shared autoencoder parameters once plus every local
// head's parameters.
func (p *Partitioned) Params() []*nn.Param {
	ps := append([]*nn.Param{}, p.ae.Params()...)
	for _, l := range p.locals {
		ps = append(ps, l.HeadParams()...)
	}
	return ps
}

// Fit trains the partitioned model: AE pretraining, T epochs of local
// pretraining per cluster, then joint training with the Sec. 5.3 loss
//
//	J_joint = J_est(fˆ*) + β·Σ_i J_est(fˆ(i)) + λ·J_AE,
//
// with the indicators f_c precomputed for all training queries.
func (p *Partitioned) Fit(tc TrainConfig, db *vecdata.Database, train, valid []vecdata.Query) {
	if len(train) == 0 {
		panic("selnet: no training queries")
	}
	// Training mutates parameters; drop compiled plans so post-training
	// inference recompiles against the settled weights.
	p.DropPlans()
	rng := rand.New(rand.NewSource(tc.Seed))
	p.locals[0].pretrainAE(rng, tc, db)

	// Stage 1: local pretraining on cluster-local labels.
	localTrain := make([][]vecdata.Query, p.K())
	for ci := range p.locals {
		localTrain[ci] = p.localQueries(ci, train)
		if p.pcfg.PretrainEpochs > 0 {
			ltc := tc
			ltc.Epochs = p.pcfg.PretrainEpochs
			ltc.EvalEvery = 0
			ltc.AEPretrainEpochs = 0 // already done
			ltc.Seed = tc.Seed + int64(ci+1)
			p.locals[ci].Fit(ltc, nil, localTrain[ci], nil)
		}
	}

	// Stage 2: joint training.
	x, t, y := vecdata.Matrices(train)
	indicators := p.indicatorMatrix(train)
	localY := make([]*tensor.Dense, p.K())
	for ci := range localY {
		_, _, ly := vecdata.Matrices(localTrain[ci])
		localY[ci] = ly
	}
	opt := nn.NewAdam(tc.LR)
	nTrain := len(train)
	idx := make([]int, nTrain)
	for i := range idx {
		idx[i] = i
	}
	var best []*tensor.Dense
	bestLoss := math.Inf(1)
	snapshot := func() {
		if len(valid) == 0 {
			return
		}
		l := p.Loss(tc, valid)
		if l < bestLoss {
			bestLoss = l
			best = best[:0]
			for _, pr := range p.Params() {
				best = append(best, pr.Value.Clone())
			}
		}
	}
	for e := 0; e < tc.Epochs; e++ {
		rng.Shuffle(nTrain, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for s := 0; s < nTrain; s += tc.Batch {
			end := s + tc.Batch
			if end > nTrain {
				end = nTrain
			}
			b := idx[s:end]
			tp := autodiff.NewTape()
			xb := tp.Input(tensor.GatherRows(x, b))
			tb := tp.Input(tensor.GatherRows(t, b))
			yb := tp.Input(tensor.GatherRows(y, b))
			aeLoss, z := p.ae.ReconstructionLoss(tp, xb)
			enhanced := tp.ConcatCols(xb, z)
			var global *autodiff.Node
			loss := tp.Scale(aeLoss, p.pcfg.Model.Lambda)
			for ci, l := range p.locals {
				tau, pp := l.controlPointsFromEnhanced(tp, enhanced)
				yhat := tp.PWLInterp(tau, pp, tb)
				lyb := tp.Input(tensor.GatherRows(localY[ci], b))
				loss = tp.Add(loss, tp.Scale(estLoss(tp, tc, yhat, lyb), p.pcfg.Beta))
				gated := tp.Mul(yhat, tp.Input(tensor.GatherRows(indicators[ci], b)))
				if global == nil {
					global = gated
				} else {
					global = tp.Add(global, gated)
				}
			}
			loss = tp.Add(loss, estLoss(tp, tc, global, yb))
			tp.Backward(loss)
			opt.Step(p.Params())
		}
		if tc.EvalEvery > 0 && (e+1)%tc.EvalEvery == 0 {
			snapshot()
		}
	}
	snapshot()
	if best != nil {
		for i, pr := range p.Params() {
			pr.Value.CopyFrom(best[i])
		}
	}
	// Drop plans compiled against mid-training weights: plans pack
	// weight panels at compile time, so a parameter restore under them
	// would leave stale panels serving.
	p.DropPlans()
}

// indicatorMatrix precomputes f_c for every query, one column vector per
// cluster.
func (p *Partitioned) indicatorMatrix(queries []vecdata.Query) []*tensor.Dense {
	out := make([]*tensor.Dense, p.K())
	for ci := range out {
		out[ci] = tensor.New(len(queries), 1)
	}
	for qi, q := range queries {
		ind := p.part.Indicator(q.X, q.T)
		for ci, active := range ind {
			if active {
				out[ci].Set(qi, 0, 1)
			}
		}
	}
	return out
}

// Estimate returns fˆ*(x, t): the sum of active local estimates. Each
// local estimate is non-negative and monotone in t, and the active set
// only grows with t, so the global estimate is consistent. Like
// Net.Estimate it runs on compiled plans (plan.go): one encoder plan
// computes the shared enhanced input, then each active cluster's head
// plan produces its local estimate. Zero heap allocations at steady
// state.
func (p *Partitioned) Estimate(x []float64, t float64) float64 {
	if len(x) != p.dim {
		panic(fmt.Sprintf("selnet: query has dim %d, model expects %d", len(x), p.dim))
	}
	ps := p.planState()
	sc := ps.scratch.Get().(*partScratch)
	k := p.K()
	p.part.IndicatorInto(sc.active[:k], sc.qbuf, x, t)
	tc := clamp(t, 0, p.pcfg.Model.TMax)
	encPl := ps.enc.Get(1)
	copy(encPl.X.Row(0), x)
	encPl.Run()
	var sum float64
	for ci := range p.locals {
		if !sc.active[ci] {
			continue
		}
		hp := ps.heads[ci].Get(1)
		copy(hp.X.Row(0), encPl.Out.Row(0))
		hp.T.Set(0, 0, tc)
		hp.Run()
		if v := hp.Out.At(0, 0); v > 0 {
			sum += v
		}
		ps.heads[ci].Put(hp)
	}
	ps.enc.Put(encPl)
	ps.scratch.Put(sc)
	return sum
}

// EstimateBatch estimates selectivities for several (query, threshold)
// pairs at once, matching row-by-row Estimate exactly. One encoder plan
// pass computes the shared enhanced input [x; z_x] per chunk, and each
// local head whose region is active for at least one row runs a single
// batched head-plan pass (gather, not mask), so per-head cost scales
// with active pairs rather than cluster count times batch size. Like
// Net.EstimateBatch it is read-only on the parameters and safe for
// concurrent use (but not concurrently with Fit/HandleUpdate). The
// allocation-free variant is EstimateBatchInto.
func (p *Partitioned) EstimateBatch(x *tensor.Dense, ts []float64) []float64 {
	if x.Rows() != len(ts) {
		panic(fmt.Sprintf("selnet: %d query rows but %d thresholds", x.Rows(), len(ts)))
	}
	out := make([]float64, len(ts))
	p.EstimateBatchInto(out, x, ts)
	return out
}

// Loss computes the global estimation loss on a query set.
func (p *Partitioned) Loss(tc TrainConfig, queries []vecdata.Query) float64 {
	pred := make([]float64, len(queries))
	for i, q := range queries {
		pred[i] = p.Estimate(q.X, q.T)
	}
	var total float64
	for i, q := range queries {
		r := math.Log(q.Y+tc.LogEps) - math.Log(pred[i]+tc.LogEps)
		if math.Abs(r) <= tc.HuberDelta {
			total += r * r / 2
		} else {
			total += tc.HuberDelta * (math.Abs(r) - tc.HuberDelta/2)
		}
	}
	return total / float64(len(queries))
}

// MAE computes the mean absolute error on a query set.
func (p *Partitioned) MAE(queries []vecdata.Query) float64 {
	if len(queries) == 0 {
		return 0
	}
	var s float64
	for _, q := range queries {
		s += math.Abs(p.Estimate(q.X, q.T) - q.Y)
	}
	return s / float64(len(queries))
}

// Name returns the paper's model name for the full estimator.
func (p *Partitioned) Name() string { return "SelNet" }

// ConsistencyGuaranteed reports that monotonicity holds by construction.
func (p *Partitioned) ConsistencyGuaranteed() bool { return true }

// ApplyInsert registers newly inserted vectors: each is assigned to the
// cluster with the nearest region ball, whose radius grows if necessary so
// the indicator stays sound.
func (p *Partitioned) ApplyInsert(vecs [][]float64) {
	for _, v := range vecs {
		space := v
		if p.dist == distance.Cosine {
			space = distance.Normalize(v)
		}
		bestC, bestB, bestD := 0, 0, math.Inf(1)
		for ci, cluster := range p.part.Clusters {
			for bi, ball := range cluster.Balls {
				d := distance.L2(space, ball.Center)
				if d < bestD {
					bestC, bestB, bestD = ci, bi, d
				}
			}
			if len(cluster.Balls) == 0 && bestD == math.Inf(1) {
				bestC, bestB = ci, -1
			}
		}
		p.clusterVecs[bestC] = append(p.clusterVecs[bestC], append([]float64(nil), v...))
		if bestB >= 0 && bestD > p.part.Clusters[bestC].Balls[bestB].Radius {
			p.part.Clusters[bestC].Balls[bestB].Radius = bestD
		}
	}
}

// ApplyDelete removes vectors (matched by value) from their clusters.
// Vectors not found are ignored.
func (p *Partitioned) ApplyDelete(vecs [][]float64) {
	for _, v := range vecs {
		for ci := range p.clusterVecs {
			found := -1
			for i, cv := range p.clusterVecs[ci] {
				if vecEqual(cv, v) {
					found = i
					break
				}
			}
			if found >= 0 {
				last := len(p.clusterVecs[ci]) - 1
				p.clusterVecs[ci][found] = p.clusterVecs[ci][last]
				p.clusterVecs[ci] = p.clusterVecs[ci][:last]
				break
			}
		}
	}
}

func vecEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// ClusterSizes returns the current number of vectors per cluster.
func (p *Partitioned) ClusterSizes() []int {
	sizes := make([]int, p.K())
	for i, vs := range p.clusterVecs {
		sizes[i] = len(vs)
	}
	return sizes
}
