package selnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"selnet/internal/distance"
	"selnet/internal/nn"
	"selnet/internal/partition"
)

func tinyPartitionedConfig(tmax float64) PartitionedConfig {
	return PartitionedConfig{
		Model:          tinyConfig(tmax),
		K:              3,
		Ratio:          0.15,
		Method:         partition.CoverTree,
		Beta:           0.1,
		PretrainEpochs: 3,
	}
}

func TestPartitionedConstruction(t *testing.T) {
	db, wl := testWorkload(20, 400, 5, 10, 4)
	rng := rand.New(rand.NewSource(21))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	if p.K() < 1 || p.K() > 3 {
		t.Fatalf("K = %d", p.K())
	}
	total := 0
	for _, s := range p.ClusterSizes() {
		total += s
	}
	if total != db.Size() {
		t.Fatalf("cluster sizes sum to %d, want %d", total, db.Size())
	}
	if p.Name() != "SelNet" || !p.ConsistencyGuaranteed() {
		t.Fatalf("metadata wrong")
	}
}

func TestLocalLabelsSumToGlobal(t *testing.T) {
	db, wl := testWorkload(22, 300, 4, 8, 4)
	rng := rand.New(rand.NewSource(23))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	for _, q := range wl.Queries[:16] {
		var sum float64
		for ci := 0; ci < p.K(); ci++ {
			sum += p.localLabel(ci, q.X, q.T)
		}
		if sum != q.Y {
			t.Fatalf("local labels sum %v != global %v", sum, q.Y)
		}
	}
}

// Global estimate is monotone in t even with the indicator gating
// (active set grows, locals are non-negative).
func TestPartitionedEstimateMonotone(t *testing.T) {
	db, wl := testWorkload(24, 300, 4, 8, 4)
	rng := rand.New(rand.NewSource(25))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := db.Vecs[r.Intn(db.Size())]
		t1 := r.Float64() * wl.TMax
		t2 := t1 + r.Float64()*wl.TMax
		return p.Estimate(x, t1) <= p.Estimate(x, t2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedFitImproves(t *testing.T) {
	db, wl := testWorkload(26, 600, 5, 30, 6)
	rng := rand.New(rand.NewSource(27))
	train, valid, test := wl.Split(rng)
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	tc := tinyTrainConfig()
	tc.Epochs = 15
	before := p.Loss(tc, test)
	p.Fit(tc, db, train, valid)
	after := p.Loss(tc, test)
	if after >= before {
		t.Fatalf("partitioned training did not improve test loss: %v -> %v", before, after)
	}
}

func TestPartitionedSharesAutoencoder(t *testing.T) {
	db, wl := testWorkload(28, 200, 4, 6, 3)
	rng := rand.New(rand.NewSource(29))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	for _, l := range p.locals {
		if l.ae != p.ae {
			t.Fatalf("local models must share the autoencoder (Sec. 5.3)")
		}
	}
	// Params must contain the AE parameters exactly once.
	count := map[interface{}]int{}
	for _, pr := range p.Params() {
		count[pr]++
	}
	for _, pr := range p.ae.Params() {
		if count[pr] != 1 {
			t.Fatalf("AE param appears %d times in Params()", count[pr])
		}
	}
}

func TestApplyInsertAndDelete(t *testing.T) {
	db, wl := testWorkload(30, 200, 4, 6, 3)
	rng := rand.New(rand.NewSource(31))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	before := p.ClusterSizes()
	totalBefore := 0
	for _, s := range before {
		totalBefore += s
	}
	// Insert three copies of an existing vector region.
	ins := [][]float64{
		append([]float64(nil), db.Vecs[0]...),
		append([]float64(nil), db.Vecs[1]...),
		append([]float64(nil), db.Vecs[2]...),
	}
	p.ApplyInsert(ins)
	totalAfter := 0
	for _, s := range p.ClusterSizes() {
		totalAfter += s
	}
	if totalAfter != totalBefore+3 {
		t.Fatalf("insert changed total by %d, want 3", totalAfter-totalBefore)
	}
	// Local label must see the inserted duplicates.
	y0 := p.localLabelSum(db.Vecs[0], 0)
	if y0 < 2 { // original + duplicate at distance 0
		t.Fatalf("inserted vector not visible in local labels: %v", y0)
	}
	// Delete them again.
	p.ApplyDelete(ins)
	totalFinal := 0
	for _, s := range p.ClusterSizes() {
		totalFinal += s
	}
	if totalFinal != totalBefore {
		t.Fatalf("delete did not restore total: %d vs %d", totalFinal, totalBefore)
	}
	// Deleting a vector that does not exist is a no-op.
	p.ApplyDelete([][]float64{{99, 99, 99, 99}})
	totalNoop := 0
	for _, s := range p.ClusterSizes() {
		totalNoop += s
	}
	if totalNoop != totalBefore {
		t.Fatalf("deleting a missing vector changed sizes")
	}
}

// localLabelSum sums the local labels across clusters for (x, t).
func (p *Partitioned) localLabelSum(x []float64, t float64) float64 {
	var s float64
	for ci := 0; ci < p.K(); ci++ {
		s += p.localLabel(ci, x, t)
	}
	return s
}

// handBuiltPartitioned assembles a Partitioned with explicit cluster
// geometry and member vectors, bypassing partition.Build, so tests can
// exercise degenerate shapes (empty clusters, ball-less clusters).
func handBuiltPartitioned(dim int, clusters []partition.Cluster, vecs [][][]float64) *Partitioned {
	rng := rand.New(rand.NewSource(1))
	cfg := tinyPartitionedConfig(1.0)
	ae := nn.NewAutoencoder(rng, dim, cfg.Model.AEHidden, cfg.Model.AELatent)
	p := &Partitioned{
		pcfg:        cfg,
		dim:         dim,
		dist:        distance.Euclidean,
		ae:          ae,
		part:        partition.Restore(partition.CoverTree, clusters, false, false),
		clusterVecs: vecs,
	}
	for range clusters {
		p.locals = append(p.locals, NewNetWithAE(rng, dim, cfg.Model, ae))
	}
	return p
}

// Inserting near an empty cluster's ball must land the vector there (and
// grow the ball if the vector falls outside it), not in a populated
// cluster farther away.
func TestApplyInsertIntoEmptyCluster(t *testing.T) {
	dim := 3
	clusters := []partition.Cluster{
		{Members: []int{0, 1}, Balls: []partition.Ball{{Center: []float64{0, 0, 0}, Radius: 1}}},
		{Members: nil, Balls: []partition.Ball{{Center: []float64{10, 10, 10}, Radius: 1}}},
	}
	vecs := [][][]float64{
		{{0.1, 0, 0}, {0, 0.1, 0}},
		{}, // empty cluster
	}
	p := handBuiltPartitioned(dim, clusters, vecs)
	p.ApplyInsert([][]float64{{10, 10, 12}})
	sizes := p.ClusterSizes()
	if sizes[0] != 2 || sizes[1] != 1 {
		t.Fatalf("insert landed wrong: sizes %v, want [2 1]", sizes)
	}
	// The vector is at distance 2 from the empty cluster's center, outside
	// its radius-1 ball: the radius must grow so the indicator stays sound.
	if r := p.part.Clusters[1].Balls[0].Radius; r < 2 {
		t.Fatalf("ball radius %v not grown to cover inserted vector", r)
	}
	// The inserted vector must be visible in the empty cluster's labels.
	if y := p.localLabel(1, []float64{10, 10, 12}, 0); y != 1 {
		t.Fatalf("inserted vector not labelled in empty cluster: %v", y)
	}
}

// With no balls anywhere, insertion falls back to a ball-less cluster
// instead of panicking or dropping the vector.
func TestApplyInsertNoBallsFallback(t *testing.T) {
	dim := 2
	clusters := []partition.Cluster{{Members: nil}, {Members: nil}}
	p := handBuiltPartitioned(dim, clusters, [][][]float64{{}, {}})
	p.ApplyInsert([][]float64{{1, 2}})
	total := 0
	for _, s := range p.ClusterSizes() {
		total += s
	}
	if total != 1 {
		t.Fatalf("inserted vector lost: sizes %v", p.ClusterSizes())
	}
}

// Deleting from a model with an empty cluster, and deleting vectors
// absent from every cluster, must both be harmless no-ops.
func TestApplyDeleteAbsentAndEmptyCluster(t *testing.T) {
	dim := 3
	clusters := []partition.Cluster{
		{Members: []int{0}, Balls: []partition.Ball{{Center: []float64{0, 0, 0}, Radius: 1}}},
		{Members: nil, Balls: []partition.Ball{{Center: []float64{5, 5, 5}, Radius: 1}}},
	}
	p := handBuiltPartitioned(dim, clusters, [][][]float64{{{0.5, 0, 0}}, {}})
	p.ApplyDelete([][]float64{{9, 9, 9}, {5, 5, 5}})
	if sizes := p.ClusterSizes(); sizes[0] != 1 || sizes[1] != 0 {
		t.Fatalf("absent delete changed sizes: %v", sizes)
	}
	// Delete the one real vector; a second delete of it is then a no-op.
	p.ApplyDelete([][]float64{{0.5, 0, 0}})
	p.ApplyDelete([][]float64{{0.5, 0, 0}})
	if sizes := p.ClusterSizes(); sizes[0] != 0 || sizes[1] != 0 {
		t.Fatalf("delete did not empty cluster exactly once: %v", sizes)
	}
}

// Mixed insert/delete batches must preserve the invariant
// sum(ClusterSizes) == initial + inserts - (deletes that matched).
func TestClusterSizeInvariantAfterMixedBatches(t *testing.T) {
	db, wl := testWorkload(38, 250, 4, 6, 3)
	rng := rand.New(rand.NewSource(39))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	total := func() int {
		s := 0
		for _, n := range p.ClusterSizes() {
			s += n
		}
		return s
	}
	want := total()
	present := make([][]float64, 0)
	for op := 0; op < 20; op++ {
		if rng.Intn(2) == 0 {
			batch := make([][]float64, 1+rng.Intn(4))
			for i := range batch {
				batch[i] = freshVec(rng, db.Dim)
			}
			p.ApplyInsert(batch)
			present = append(present, batch...)
			want += len(batch)
		} else {
			batch := make([][]float64, 0, 3)
			// One vector we know is present (if any), one absent.
			if len(present) > 0 {
				i := rng.Intn(len(present))
				batch = append(batch, present[i])
				present = append(present[:i], present[i+1:]...)
				want--
			}
			batch = append(batch, []float64{77, 77, 77, 77})
			p.ApplyDelete(batch)
		}
		if got := total(); got != want {
			t.Fatalf("op %d: total %d, want %d", op, got, want)
		}
	}
}

// freshVec draws a random vector; continuous coordinates make an exact
// value collision with an existing vector impossible in practice, so
// delete-by-value hits exactly the vectors this test inserted.
func freshVec(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = 1 + rng.Float64()
	}
	return v
}

func TestPartitionedEstimateNonNegative(t *testing.T) {
	db, wl := testWorkload(32, 150, 4, 5, 3)
	rng := rand.New(rand.NewSource(33))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	for i := 0; i < 20; i++ {
		x := db.Vecs[rng.Intn(db.Size())]
		if v := p.Estimate(x, rng.Float64()*wl.TMax); v < 0 {
			t.Fatalf("negative estimate %v", v)
		}
	}
}

func TestIndicatorMatrixMatchesIndicator(t *testing.T) {
	db, wl := testWorkload(34, 200, 4, 6, 3)
	rng := rand.New(rand.NewSource(35))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	qs := wl.Queries[:10]
	mat := p.indicatorMatrix(qs)
	for qi, q := range qs {
		ind := p.part.Indicator(q.X, q.T)
		for ci := range ind {
			want := 0.0
			if ind[ci] {
				want = 1.0
			}
			if mat[ci].At(qi, 0) != want {
				t.Fatalf("indicator matrix mismatch at query %d cluster %d", qi, ci)
			}
		}
	}
}

func TestPartitionedMAE(t *testing.T) {
	db, wl := testWorkload(36, 150, 4, 5, 3)
	rng := rand.New(rand.NewSource(37))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	if p.MAE(nil) != 0 {
		t.Fatalf("empty MAE should be 0")
	}
	mae := p.MAE(wl.Queries[:10])
	if mae < 0 || math.IsNaN(mae) {
		t.Fatalf("bad MAE %v", mae)
	}
}
