package selnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"selnet/internal/partition"
)

func tinyPartitionedConfig(tmax float64) PartitionedConfig {
	return PartitionedConfig{
		Model:          tinyConfig(tmax),
		K:              3,
		Ratio:          0.15,
		Method:         partition.CoverTree,
		Beta:           0.1,
		PretrainEpochs: 3,
	}
}

func TestPartitionedConstruction(t *testing.T) {
	db, wl := testWorkload(20, 400, 5, 10, 4)
	rng := rand.New(rand.NewSource(21))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	if p.K() < 1 || p.K() > 3 {
		t.Fatalf("K = %d", p.K())
	}
	total := 0
	for _, s := range p.ClusterSizes() {
		total += s
	}
	if total != db.Size() {
		t.Fatalf("cluster sizes sum to %d, want %d", total, db.Size())
	}
	if p.Name() != "SelNet" || !p.ConsistencyGuaranteed() {
		t.Fatalf("metadata wrong")
	}
}

func TestLocalLabelsSumToGlobal(t *testing.T) {
	db, wl := testWorkload(22, 300, 4, 8, 4)
	rng := rand.New(rand.NewSource(23))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	for _, q := range wl.Queries[:16] {
		var sum float64
		for ci := 0; ci < p.K(); ci++ {
			sum += p.localLabel(ci, q.X, q.T)
		}
		if sum != q.Y {
			t.Fatalf("local labels sum %v != global %v", sum, q.Y)
		}
	}
}

// Global estimate is monotone in t even with the indicator gating
// (active set grows, locals are non-negative).
func TestPartitionedEstimateMonotone(t *testing.T) {
	db, wl := testWorkload(24, 300, 4, 8, 4)
	rng := rand.New(rand.NewSource(25))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := db.Vecs[r.Intn(db.Size())]
		t1 := r.Float64() * wl.TMax
		t2 := t1 + r.Float64()*wl.TMax
		return p.Estimate(x, t1) <= p.Estimate(x, t2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedFitImproves(t *testing.T) {
	db, wl := testWorkload(26, 600, 5, 30, 6)
	rng := rand.New(rand.NewSource(27))
	train, valid, test := wl.Split(rng)
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	tc := tinyTrainConfig()
	tc.Epochs = 15
	before := p.Loss(tc, test)
	p.Fit(tc, db, train, valid)
	after := p.Loss(tc, test)
	if after >= before {
		t.Fatalf("partitioned training did not improve test loss: %v -> %v", before, after)
	}
}

func TestPartitionedSharesAutoencoder(t *testing.T) {
	db, wl := testWorkload(28, 200, 4, 6, 3)
	rng := rand.New(rand.NewSource(29))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	for _, l := range p.locals {
		if l.ae != p.ae {
			t.Fatalf("local models must share the autoencoder (Sec. 5.3)")
		}
	}
	// Params must contain the AE parameters exactly once.
	count := map[interface{}]int{}
	for _, pr := range p.Params() {
		count[pr]++
	}
	for _, pr := range p.ae.Params() {
		if count[pr] != 1 {
			t.Fatalf("AE param appears %d times in Params()", count[pr])
		}
	}
}

func TestApplyInsertAndDelete(t *testing.T) {
	db, wl := testWorkload(30, 200, 4, 6, 3)
	rng := rand.New(rand.NewSource(31))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	before := p.ClusterSizes()
	totalBefore := 0
	for _, s := range before {
		totalBefore += s
	}
	// Insert three copies of an existing vector region.
	ins := [][]float64{
		append([]float64(nil), db.Vecs[0]...),
		append([]float64(nil), db.Vecs[1]...),
		append([]float64(nil), db.Vecs[2]...),
	}
	p.ApplyInsert(ins)
	totalAfter := 0
	for _, s := range p.ClusterSizes() {
		totalAfter += s
	}
	if totalAfter != totalBefore+3 {
		t.Fatalf("insert changed total by %d, want 3", totalAfter-totalBefore)
	}
	// Local label must see the inserted duplicates.
	y0 := p.localLabelSum(db.Vecs[0], 0)
	if y0 < 2 { // original + duplicate at distance 0
		t.Fatalf("inserted vector not visible in local labels: %v", y0)
	}
	// Delete them again.
	p.ApplyDelete(ins)
	totalFinal := 0
	for _, s := range p.ClusterSizes() {
		totalFinal += s
	}
	if totalFinal != totalBefore {
		t.Fatalf("delete did not restore total: %d vs %d", totalFinal, totalBefore)
	}
	// Deleting a vector that does not exist is a no-op.
	p.ApplyDelete([][]float64{{99, 99, 99, 99}})
	totalNoop := 0
	for _, s := range p.ClusterSizes() {
		totalNoop += s
	}
	if totalNoop != totalBefore {
		t.Fatalf("deleting a missing vector changed sizes")
	}
}

// localLabelSum sums the local labels across clusters for (x, t).
func (p *Partitioned) localLabelSum(x []float64, t float64) float64 {
	var s float64
	for ci := 0; ci < p.K(); ci++ {
		s += p.localLabel(ci, x, t)
	}
	return s
}

func TestPartitionedEstimateNonNegative(t *testing.T) {
	db, wl := testWorkload(32, 150, 4, 5, 3)
	rng := rand.New(rand.NewSource(33))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	for i := 0; i < 20; i++ {
		x := db.Vecs[rng.Intn(db.Size())]
		if v := p.Estimate(x, rng.Float64()*wl.TMax); v < 0 {
			t.Fatalf("negative estimate %v", v)
		}
	}
}

func TestIndicatorMatrixMatchesIndicator(t *testing.T) {
	db, wl := testWorkload(34, 200, 4, 6, 3)
	rng := rand.New(rand.NewSource(35))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	qs := wl.Queries[:10]
	mat := p.indicatorMatrix(qs)
	for qi, q := range qs {
		ind := p.part.Indicator(q.X, q.T)
		for ci := range ind {
			want := 0.0
			if ind[ci] {
				want = 1.0
			}
			if mat[ci].At(qi, 0) != want {
				t.Fatalf("indicator matrix mismatch at query %d cluster %d", qi, ci)
			}
		}
	}
}

func TestPartitionedMAE(t *testing.T) {
	db, wl := testWorkload(36, 150, 4, 5, 3)
	rng := rand.New(rand.NewSource(37))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	if p.MAE(nil) != 0 {
		t.Fatalf("empty MAE should be 0")
	}
	mae := p.MAE(wl.Queries[:10])
	if mae < 0 || math.IsNaN(mae) {
		t.Fatalf("bad MAE %v", mae)
	}
}
