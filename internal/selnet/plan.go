package selnet

import (
	"sync"
	"sync/atomic"

	"selnet/internal/autodiff"
	"selnet/internal/infer"
	"selnet/internal/tensor"
)

// This file puts SelNet inference on the compiled-plan engine
// (internal/infer). The first estimate against a model records its
// forward pass once per batch-size class into an infer.Plan — a
// topologically ordered list of forward kernels bound to preallocated
// buffers — and every later call checks a plan out of the model's pool,
// fills its input buffers in place, replays the kernels, and reads the
// outputs. Steady-state inference performs zero heap allocations and
// never rebuilds a tape.
//
// A compiled plan snapshots the model's weights: the optimize pass
// (infer's fuse.go) packs each constant weight matrix into a blocked
// panel layout at compile time, so a plan belongs to one parameter
// generation. Every code path that mutates parameters in place —
// optimizer steps inside Fit/HandleUpdate, best-snapshot restores —
// calls DropPlans before the next plan-based evaluation, and the
// serving layer drops plans when it discards a model generation after
// a hot-swap. Dropped plans are recompiled (and re-packed) lazily on
// next use. Clones and deserialized models are fresh objects and start
// with no plans.

// maxPlanBatch is the largest batch one compiled plan covers; larger
// EstimateBatch calls are chunked. Classes are powers of two, so a pool
// holds at most log2(maxPlanBatch)+1 resident plans.
const maxPlanBatch = 64

// netPlans is the lazily built plan pool of a Net.
type netPlans struct {
	mu   sync.Mutex
	pool atomic.Pointer[infer.Pool]
}

// planPool returns the Net's plan pool, building it on first use.
func (n *Net) planPool() *infer.Pool {
	if p := n.plans.pool.Load(); p != nil {
		return p
	}
	n.plans.mu.Lock()
	defer n.plans.mu.Unlock()
	if p := n.plans.pool.Load(); p != nil {
		return p
	}
	p := infer.NewPool(maxPlanBatch, n.compilePlan)
	n.plans.pool.Store(p)
	return p
}

// compilePlan records the full inference pass (encode, control points,
// PWL interpolation) for one batch capacity.
func (n *Net) compilePlan(batch int) *infer.Plan {
	prog := infer.NewProgram()
	tp := autodiff.NewForwardTape(prog)
	x := tensor.NewPooled(batch, n.dim)
	tcol := tensor.NewPooled(batch, 1)
	tau, p := n.controlPointsInference(tp, tp.Input(x))
	yhat := tp.PWLInterp(tau, p, tp.Input(tcol))
	bufs := append(tp.PooledBuffers(), x, tcol)
	return infer.NewPlan(batch, prog, x, tcol, yhat.Value, tau.Value, p.Value, bufs)
}

// compileHeadPlan records the control-point generators and PWL
// interpolation from a precomputed enhanced input [x; z_x] — the
// per-cluster plan of the partitioned estimator, which shares one
// encoder pass across all local heads.
func (n *Net) compileHeadPlan(batch int) *infer.Plan {
	prog := infer.NewProgram()
	tp := autodiff.NewForwardTape(prog)
	e := tensor.NewPooled(batch, n.dim+n.cfg.AELatent)
	tcol := tensor.NewPooled(batch, 1)
	tau, p := n.controlPointsFromEnhanced(tp, tp.Input(e))
	yhat := tp.PWLInterp(tau, p, tp.Input(tcol))
	bufs := append(tp.PooledBuffers(), e, tcol)
	return infer.NewPlan(batch, prog, e, tcol, yhat.Value, tau.Value, p.Value, bufs)
}

// DropPlans invalidates every compiled plan, returning their buffers to
// the tensor pool. Plans recompile lazily on the next estimate; calls
// holding a checked-out plan are unaffected. The serving layer calls
// this when a model generation is swapped out; training entry points
// call it so post-training inference recompiles against settled
// parameters.
func (n *Net) DropPlans() {
	if p := n.plans.pool.Load(); p != nil {
		p.Drop()
	}
}

// PlanStats snapshots the plan pool's counters (zero before first use).
func (n *Net) PlanStats() infer.PoolStats {
	if p := n.plans.pool.Load(); p != nil {
		return p.Stats()
	}
	return infer.PoolStats{}
}

// EstimateBatchInto is the allocation-free EstimateBatch: it writes one
// estimate per row of x into out (len(out) == x.Rows() == len(ts)).
// Steady state performs zero heap allocations — the serving hot path
// calls this with reused buffers.
func (n *Net) EstimateBatchInto(out []float64, x *tensor.Dense, ts []float64) {
	if x.Rows() != len(ts) || len(out) != len(ts) {
		panic("selnet: EstimateBatchInto length mismatch")
	}
	if x.Cols() != n.dim {
		panic("selnet: EstimateBatchInto query dim mismatch")
	}
	pool := n.planPool()
	for start := 0; start < len(ts); {
		c := len(ts) - start
		if c > pool.MaxBatch() {
			c = pool.MaxBatch()
		}
		pl := pool.Get(c)
		for i := 0; i < c; i++ {
			copy(pl.X.Row(i), x.Row(start+i))
			pl.T.Set(i, 0, clamp(ts[start+i], 0, n.cfg.TMax))
		}
		pl.Run()
		for i := 0; i < c; i++ {
			v := pl.Out.At(i, 0)
			if v < 0 {
				v = 0
			}
			out[start+i] = v
		}
		pool.Put(pl)
		start += c
	}
}

// estimateBatchTape is the pre-plan reference implementation: one fresh
// tape per call. Kept for equivalence tests and the tape-vs-plan
// benchmark; production inference goes through the plan path.
func (n *Net) estimateBatchTape(x *tensor.Dense, ts []float64) []float64 {
	tp := autodiff.NewTape()
	tcol := tensor.New(len(ts), 1)
	for i, t := range ts {
		tcol.Set(i, 0, clamp(t, 0, n.cfg.TMax))
	}
	tau, p := n.controlPointsInference(tp, tp.Input(x))
	yhat := tp.PWLInterp(tau, p, tp.Input(tcol))
	out := make([]float64, len(ts))
	for i := range out {
		v := yhat.Value.At(i, 0)
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// ----------------------------------------------------------------------------
// Partitioned plans

// partPlans is the lazily built plan state of a Partitioned model: one
// encoder pool (x -> [x; z_x]), one head pool per cluster (enhanced ->
// estimate), and a scratch pool for the per-request indicator and
// gather bookkeeping.
type partPlans struct {
	enc     *infer.Pool
	heads   []*infer.Pool
	scratch sync.Pool // *partScratch
}

// partScratch holds one request's allocation-free bookkeeping.
type partScratch struct {
	active []bool    // row-major [maxPlanBatch x K] indicator matrix
	rows   []int     // gathered row indices for one head
	qbuf   []float64 // normalized-query scratch for cosine indicators
}

type partPlanState struct {
	mu    sync.Mutex
	state atomic.Pointer[partPlans]
}

// planState returns the model's plan pools, building them on first use.
func (p *Partitioned) planState() *partPlans {
	if ps := p.plans.state.Load(); ps != nil {
		return ps
	}
	p.plans.mu.Lock()
	defer p.plans.mu.Unlock()
	if ps := p.plans.state.Load(); ps != nil {
		return ps
	}
	ps := &partPlans{enc: infer.NewPool(maxPlanBatch, p.compileEncPlan)}
	for _, l := range p.locals {
		ps.heads = append(ps.heads, infer.NewPool(maxPlanBatch, l.compileHeadPlan))
	}
	k, dim := p.K(), p.dim
	ps.scratch.New = func() any {
		return &partScratch{
			active: make([]bool, maxPlanBatch*k),
			rows:   make([]int, 0, maxPlanBatch),
			qbuf:   make([]float64, dim),
		}
	}
	p.plans.state.Store(ps)
	return ps
}

// compileEncPlan records the shared encoder pass: X in, the enhanced
// representation [x; z_x] out (no threshold, no control points).
func (p *Partitioned) compileEncPlan(batch int) *infer.Plan {
	prog := infer.NewProgram()
	tp := autodiff.NewForwardTape(prog)
	x := tensor.NewPooled(batch, p.dim)
	xn := tp.Input(x)
	enh := tp.ConcatCols(xn, p.ae.Encode(tp, xn))
	bufs := append(tp.PooledBuffers(), x)
	return infer.NewPlan(batch, prog, x, nil, enh.Value, nil, nil, bufs)
}

// DropPlans invalidates the encoder and every head pool (and any pools
// the local nets built for direct use).
func (p *Partitioned) DropPlans() {
	if ps := p.plans.state.Load(); ps != nil {
		ps.enc.Drop()
		for _, h := range ps.heads {
			h.Drop()
		}
	}
	for _, l := range p.locals {
		l.DropPlans()
	}
}

// PlanStats merges the encoder and per-cluster head pool counters into
// one figure.
func (p *Partitioned) PlanStats() infer.PoolStats {
	var s infer.PoolStats
	if ps := p.plans.state.Load(); ps != nil {
		s = ps.enc.Stats()
		for _, h := range ps.heads {
			s = s.Merge(h.Stats())
		}
	}
	for _, l := range p.locals {
		s = s.Merge(l.PlanStats())
	}
	return s
}

// EstimateBatchInto is the allocation-free partitioned batch estimate:
// one encoder plan pass per chunk, then one head plan pass per cluster
// over the rows whose region is active, summed per row into out.
func (p *Partitioned) EstimateBatchInto(out []float64, x *tensor.Dense, ts []float64) {
	if x.Rows() != len(ts) || len(out) != len(ts) {
		panic("selnet: EstimateBatchInto length mismatch")
	}
	if x.Cols() != p.dim {
		panic("selnet: EstimateBatchInto query dim mismatch")
	}
	n := x.Rows()
	if n == 0 {
		return
	}
	ps := p.planState()
	k := p.K()
	sc := ps.scratch.Get().(*partScratch)
	for start := 0; start < n; {
		c := n - start
		if c > ps.enc.MaxBatch() {
			c = ps.enc.MaxBatch()
		}
		encPl := ps.enc.Get(c)
		for i := 0; i < c; i++ {
			copy(encPl.X.Row(i), x.Row(start+i))
			p.part.IndicatorInto(sc.active[i*k:(i+1)*k], sc.qbuf, x.Row(start+i), ts[start+i])
			out[start+i] = 0
		}
		encPl.Run()
		for ci := range p.locals {
			rows := sc.rows[:0]
			for i := 0; i < c; i++ {
				if sc.active[i*k+ci] {
					rows = append(rows, i)
				}
			}
			if len(rows) == 0 {
				continue
			}
			hp := ps.heads[ci].Get(len(rows))
			for j, i := range rows {
				copy(hp.X.Row(j), encPl.Out.Row(i))
				hp.T.Set(j, 0, clamp(ts[start+i], 0, p.pcfg.Model.TMax))
			}
			hp.Run()
			for j, i := range rows {
				if v := hp.Out.At(j, 0); v > 0 {
					out[start+i] += v
				}
			}
			ps.heads[ci].Put(hp)
		}
		ps.enc.Put(encPl)
		start += c
	}
	ps.scratch.Put(sc)
}
