package selnet

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestNetSaveLoadRoundTrip(t *testing.T) {
	db, wl := testWorkload(60, 300, 4, 10, 4)
	rng := rand.New(rand.NewSource(61))
	train, valid, _ := wl.Split(rng)
	net := NewNet(rng, db.Dim, tinyConfig(wl.TMax))
	tc := tinyTrainConfig()
	tc.Epochs = 5
	net.Fit(tc, db, train, valid)

	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadNet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Name() != net.Name() || restored.Dim() != net.Dim() || restored.TMax() != net.TMax() {
		t.Fatalf("metadata not restored")
	}
	for _, q := range wl.Queries[:20] {
		a := net.Estimate(q.X, q.T)
		b := restored.Estimate(q.X, q.T)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("estimates diverge after round trip: %v vs %v", a, b)
		}
	}
}

func TestNetSaveLoadFile(t *testing.T) {
	db, wl := testWorkload(62, 150, 3, 5, 3)
	rng := rand.New(rand.NewSource(63))
	net := NewNet(rng, db.Dim, tinyConfig(wl.TMax))
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadNetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	x := db.Vecs[0]
	if math.Abs(net.Estimate(x, 0.5)-restored.Estimate(x, 0.5)) > 1e-12 {
		t.Fatalf("file round trip changed estimates")
	}
}

func TestPartitionedSaveLoadRoundTrip(t *testing.T) {
	db, wl := testWorkload(64, 300, 4, 10, 4)
	rng := rand.New(rand.NewSource(65))
	train, valid, _ := wl.Split(rng)
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	tc := tinyTrainConfig()
	tc.Epochs = 4
	p.Fit(tc, db, train, valid)

	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadPartitioned(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.K() != p.K() || restored.Name() != p.Name() {
		t.Fatalf("structure not restored: K %d vs %d", restored.K(), p.K())
	}
	for _, q := range wl.Queries[:20] {
		a := p.Estimate(q.X, q.T)
		b := restored.Estimate(q.X, q.T)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("partitioned estimates diverge after round trip: %v vs %v", a, b)
		}
	}
	// The restored model must remain updatable (cluster vectors intact).
	restored.ApplyInsert([][]float64{append([]float64(nil), db.Vecs[0]...)})
	total := 0
	for _, s := range restored.ClusterSizes() {
		total += s
	}
	if total != db.Size()+1 {
		t.Fatalf("cluster vectors not restored: total %d", total)
	}
}

func TestLoadNetRejectsGarbage(t *testing.T) {
	if _, err := LoadNet(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatalf("expected error for garbage input")
	}
}

// TestLoadModelFileDispatch exercises the single entry point the daemon
// loads through: tagged containers for both kinds, plus legacy untagged
// files ('selest train' output and bare Partitioned streams), must all
// come back as the right concrete type with identical estimates.
func TestLoadModelFileDispatch(t *testing.T) {
	db, wl := testWorkload(66, 300, 4, 10, 4)
	rng := rand.New(rand.NewSource(67))
	net := NewNet(rng, db.Dim, tinyConfig(wl.TMax))
	part := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	dir := t.TempDir()
	x, tt := db.Vecs[0], wl.TMax/2

	cases := []struct {
		file string
		want Model
		save func(path string) error
	}{
		{"net-tagged.gob", net, func(p string) error { return SaveModelFile(p, net) }},
		{"part-tagged.gob", part, func(p string) error { return SaveModelFile(p, part) }},
		{"net-legacy.gob", net, net.SaveFile},
		{"part-legacy.gob", part, func(p string) error {
			f, err := os.Create(p)
			if err != nil {
				return err
			}
			defer f.Close()
			return part.Save(f)
		}},
	}
	for _, c := range cases {
		path := filepath.Join(dir, c.file)
		if err := c.save(path); err != nil {
			t.Fatalf("%s: save: %v", c.file, err)
		}
		got, err := LoadModelFile(path)
		if err != nil {
			t.Fatalf("%s: load: %v", c.file, err)
		}
		if _, isPart := c.want.(*Partitioned); isPart {
			if _, ok := got.(*Partitioned); !ok {
				t.Fatalf("%s: loaded as %T, want *Partitioned", c.file, got)
			}
		} else if _, ok := got.(*Net); !ok {
			t.Fatalf("%s: loaded as %T, want *Net", c.file, got)
		}
		if math.Abs(got.Estimate(x, tt)-c.want.Estimate(x, tt)) > 1e-12 {
			t.Fatalf("%s: estimates diverge after load", c.file)
		}
	}

	if _, err := LoadModelFile(filepath.Join(dir, "missing.gob")); err == nil {
		t.Fatal("missing file loaded")
	}
	garbage := filepath.Join(dir, "garbage.gob")
	if err := os.WriteFile(garbage, []byte("SELMODL1 is not followed by a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelFile(garbage); err == nil {
		t.Fatal("garbage tagged container loaded")
	}
}
