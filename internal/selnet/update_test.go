package selnet

import (
	"math"
	"math/rand"
	"testing"

	"selnet/internal/vecdata"
)

func TestHandleUpdateSkipsMinorChanges(t *testing.T) {
	db, wl := testWorkload(40, 400, 5, 20, 5)
	rng := rand.New(rand.NewSource(41))
	train, valid, _ := wl.Split(rng)
	net := NewNet(rng, db.Dim, tinyConfig(wl.TMax))
	tc := tinyTrainConfig()
	tc.Epochs = 8
	net.Fit(tc, db, train, valid)

	// No actual change to db: labels refresh to the same values, so the
	// MAE delta is 0 and the handler must skip retraining.
	uc := DefaultUpdateConfig()
	res := net.HandleUpdate(tc, uc, db, train, valid)
	if res.Retrained {
		t.Fatalf("no-op update must not retrain")
	}
	if res.EpochsRun != 0 {
		t.Fatalf("no-op update ran %d epochs", res.EpochsRun)
	}
}

func TestHandleUpdateRetrainsOnLargeChanges(t *testing.T) {
	db, wl := testWorkload(42, 400, 5, 20, 5)
	rng := rand.New(rand.NewSource(43))
	train, valid, _ := wl.Split(rng)
	net := NewNet(rng, db.Dim, tinyConfig(wl.TMax))
	tc := tinyTrainConfig()
	tc.Epochs = 8
	net.Fit(tc, db, train, valid)

	// Massive insertion: duplicate half the database, roughly multiplying
	// selectivities by 1.5x — far beyond any reasonable deltaU.
	ins := make([][]float64, 0, db.Size()/2)
	for i := 0; i < db.Size()/2; i++ {
		ins = append(ins, append([]float64(nil), db.Vecs[i]...))
	}
	db.Insert(ins...)
	uc := UpdateConfig{DeltaU: 0.5, Patience: 2, MaxEpochs: 6}
	res := net.HandleUpdate(tc, uc, db, train, valid)
	if !res.Retrained {
		t.Fatalf("large update must trigger retraining")
	}
	if res.EpochsRun < 1 {
		t.Fatalf("retraining ran no epochs")
	}
	if res.MAEAfter > res.MAEBefore {
		t.Fatalf("incremental training worsened MAE: %v -> %v", res.MAEBefore, res.MAEAfter)
	}
	// Labels must now reflect the enlarged database.
	for _, q := range valid[:3] {
		if got := db.Selectivity(q.X, q.T); got != q.Y {
			t.Fatalf("validation labels stale after update")
		}
	}
}

func TestPartitionedHandleUpdate(t *testing.T) {
	db, wl := testWorkload(44, 300, 4, 12, 4)
	rng := rand.New(rand.NewSource(45))
	train, valid, _ := wl.Split(rng)
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	tc := tinyTrainConfig()
	tc.Epochs = 6
	p.Fit(tc, db, train, valid)

	// No-op: skip. The duplicate insert below shifts validation MAE by
	// ~1.0, so the threshold must sit clearly under it — not at it —
	// or the decision hangs on the last ulp of the MAE sum.
	uc := UpdateConfig{DeltaU: 0.5, Patience: 2, MaxEpochs: 4}
	res := p.HandleUpdate(tc, uc, db, train, valid)
	if res.Retrained {
		t.Fatalf("no-op update must not retrain the partitioned model")
	}

	// Real update: insert duplicates, register them, expect retraining.
	ins := make([][]float64, 0, db.Size()/2)
	for i := 0; i < db.Size()/2; i++ {
		ins = append(ins, append([]float64(nil), db.Vecs[i]...))
	}
	db.Insert(ins...)
	p.ApplyInsert(ins)
	res2 := p.HandleUpdate(tc, uc, db, train, valid)
	if !res2.Retrained {
		t.Fatalf("large update must retrain the partitioned model")
	}
	if res2.MAEAfter > res2.MAEBefore {
		t.Fatalf("partitioned incremental training worsened MAE: %v -> %v",
			res2.MAEBefore, res2.MAEAfter)
	}
}

func TestBaselineMAEAccumulatesDrift(t *testing.T) {
	db, wl := testWorkload(50, 300, 4, 12, 4)
	rng := rand.New(rand.NewSource(51))
	train, valid, _ := wl.Split(rng)
	net := NewNet(rng, db.Dim, tinyConfig(wl.TMax))
	tc := tinyTrainConfig()
	tc.Epochs = 6
	net.Fit(tc, db, train, valid)

	// Grow the database so labels genuinely change.
	ins := make([][]float64, 0, db.Size()/5)
	for i := 0; i < cap(ins); i++ {
		ins = append(ins, append([]float64(nil), db.Vecs[i]...))
	}
	db.Insert(ins...)

	// Per-op semantics (BaselineMAE=0) with a deltaU larger than any
	// single-op shift: never retrains.
	snapshot := append([]vecdata.Query(nil), valid...)
	ucPerOp := UpdateConfig{DeltaU: 1e9, Patience: 2, MaxEpochs: 2}
	if res := net.HandleUpdate(tc, ucPerOp, db, train, snapshot); res.Retrained {
		t.Fatalf("huge deltaU must suppress retraining")
	}
	// Baseline semantics: a stale baseline far from the current MAE must
	// trigger retraining even when the per-op delta would not (the
	// comparison reference switches to BaselineMAE).
	cur := net.MAE(snapshot)
	ucBase := UpdateConfig{DeltaU: 1, BaselineMAE: cur + 10, Patience: 2, MaxEpochs: 2}
	if res := net.HandleUpdate(tc, ucBase, db, train, snapshot); !res.Retrained {
		t.Fatalf("drift vs baseline should trigger retraining")
	}
}

func TestFitEpochsUntilNoImprovementStops(t *testing.T) {
	db, wl := testWorkload(46, 200, 4, 10, 4)
	rng := rand.New(rand.NewSource(47))
	train, valid, _ := wl.Split(rng)
	net := NewNet(rng, db.Dim, tinyConfig(wl.TMax))
	tc := tinyTrainConfig()
	epochs := net.FitEpochsUntilNoImprovement(tc, train, valid, 2, 50)
	if epochs < 1 || epochs > 50 {
		t.Fatalf("epochs = %d out of range", epochs)
	}
}

func TestUpdateStreamEndToEnd(t *testing.T) {
	// A miniature version of the Figure 5 experiment: run a stream of
	// updates through the handler and check errors stay finite and labels
	// stay fresh.
	db, wl := testWorkload(48, 300, 4, 12, 4)
	rng := rand.New(rand.NewSource(49))
	train, valid, _ := wl.Split(rng)
	net := NewNet(rng, db.Dim, tinyConfig(wl.TMax))
	tc := tinyTrainConfig()
	tc.Epochs = 6
	net.Fit(tc, db, train, valid)
	uc := UpdateConfig{DeltaU: 2.0, Patience: 2, MaxEpochs: 3}
	ops := vecdata.UpdateStream(rng, 6, 5, func(r *rand.Rand) []float64 {
		return vecdata.SampleLike(r, db, 0.1)
	})
	for _, op := range ops {
		op.Apply(rng, db)
		res := net.HandleUpdate(tc, uc, db, train, valid)
		if math.IsNaN(res.MAEAfter) || math.IsInf(res.MAEAfter, 0) {
			t.Fatalf("MAE diverged: %v", res.MAEAfter)
		}
	}
}
