package selnet

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"selnet/internal/distance"
	"selnet/internal/vecdata"
)

// tinyConfig returns a small architecture for fast tests.
func tinyConfig(tmax float64) Config {
	return Config{
		L: 8, EmbedDim: 6,
		AEHidden: []int{16}, AELatent: 4,
		TauHidden: []int{16}, MHidden: []int{24, 16},
		TMax: tmax, Lambda: 0.1, QueryDependentTau: true, NormEps: 1e-6,
	}
}

func tinyTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs: 25, Batch: 64, LR: 3e-3, HuberDelta: 1.345, LogEps: 1e-3,
		Seed: 1, EvalEvery: 5, AEPretrainEpochs: 10, AEPretrainSample: 200,
	}
}

// testWorkload builds a small database and its geometric workload.
func testWorkload(seed int64, n, dim, queries, w int) (*vecdata.Database, *vecdata.Workload) {
	rng := rand.New(rand.NewSource(seed))
	db := vecdata.SyntheticFasttext(rng, n, dim, distance.Euclidean)
	wl := vecdata.GeometricWorkload(rng, db, queries, w)
	return db, wl
}

func TestNetConstructionPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := tinyConfig(0) // TMax unset
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected panic for TMax=0")
			}
		}()
		NewNet(rng, 4, cfg)
	}()
	cfg2 := tinyConfig(1)
	cfg2.L = 0
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected panic for L=0")
			}
		}()
		NewNet(rng, 4, cfg2)
	}()
}

// Lemma 1 realized in code: for ANY weights (trained or random), the
// estimate is monotonically non-decreasing in t.
func TestEstimateMonotoneForRandomWeights(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := NewNet(rng, 5, tinyConfig(2.0))
		x := make([]float64, 5)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for tt := -0.2; tt <= 2.4; tt += 0.1 {
			v := net.Estimate(x, tt)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Control points must satisfy the structural invariants of Sec. 5.2:
// τ_0 = 0, τ_{L+1} = TMax, τ non-decreasing, p non-negative and
// non-decreasing.
func TestControlPointInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const tmax = 3.5
		net := NewNet(rng, 4, tinyConfig(tmax))
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		tau, p := net.ControlPoints(x)
		if len(tau) != net.cfg.L+2 || len(p) != net.cfg.L+2 {
			return false
		}
		if tau[0] != 0 {
			return false
		}
		if math.Abs(tau[len(tau)-1]-tmax) > 1e-9 {
			return false
		}
		for i := 1; i < len(tau); i++ {
			if tau[i] < tau[i-1]-1e-12 {
				return false
			}
		}
		if p[0] < 0 {
			return false
		}
		for i := 1; i < len(p); i++ {
			if p[i] < p[i-1]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryDependentTauVaries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewNet(rng, 4, tinyConfig(2))
	tau1, _ := net.ControlPoints([]float64{1, 0, 0, 0})
	tau2, _ := net.ControlPoints([]float64{0, 2, -1, 3})
	same := true
	for i := range tau1 {
		if math.Abs(tau1[i]-tau2[i]) > 1e-9 {
			same = false
		}
	}
	if same {
		t.Fatalf("query-dependent τ should differ across queries")
	}
}

// The SelNet-ad-ct ablation must produce the SAME τ for every query
// (Sec. 7.4, Figure 4).
func TestAdCtAblationSharesTau(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := tinyConfig(2)
	cfg.QueryDependentTau = false
	net := NewNet(rng, 4, cfg)
	if net.Name() != "SelNet-ad-ct" {
		t.Fatalf("Name = %q", net.Name())
	}
	tau1, _ := net.ControlPoints([]float64{1, 0, 0, 0})
	tau2, _ := net.ControlPoints([]float64{0, 2, -1, 3})
	for i := range tau1 {
		if math.Abs(tau1[i]-tau2[i]) > 1e-9 {
			t.Fatalf("ad-ct τ differs at %d: %v vs %v", i, tau1[i], tau2[i])
		}
	}
}

func TestEstimateBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewNet(rng, 3, tinyConfig(1.5))
	qs := [][]float64{{0.1, 0.2, 0.3}, {-1, 0.5, 2}, {0, 0, 0}}
	ts := []float64{0.3, 0.9, 1.2}
	x, _, _ := vecdata.Matrices([]vecdata.Query{
		{X: qs[0], T: ts[0]}, {X: qs[1], T: ts[1]}, {X: qs[2], T: ts[2]},
	})
	batch := net.EstimateBatch(x, ts)
	for i := range qs {
		single := net.Estimate(qs[i], ts[i])
		if math.Abs(batch[i]-single) > 1e-9 {
			t.Fatalf("batch[%d] = %v, single = %v", i, batch[i], single)
		}
	}
}

func TestEstimateClampsThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewNet(rng, 3, tinyConfig(1.0))
	x := []float64{0.5, -0.5, 1}
	if got, want := net.Estimate(x, -5), net.Estimate(x, 0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("negative t should clamp to 0: %v vs %v", got, want)
	}
	if got, want := net.Estimate(x, 99), net.Estimate(x, 1.0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("huge t should clamp to TMax: %v vs %v", got, want)
	}
}

func TestFitImprovesAccuracy(t *testing.T) {
	db, wl := testWorkload(7, 800, 6, 40, 8)
	rng := rand.New(rand.NewSource(8))
	train, valid, test := wl.Split(rng)
	cfg := tinyConfig(wl.TMax)
	net := NewNet(rng, db.Dim, cfg)
	tc := tinyTrainConfig()
	// Compare the trained objective (Huber-log) on held-out queries: an
	// untrained network is a random baseline under any metric, so the
	// objective is the meaningful before/after yardstick.
	before := net.Loss(tc, test)
	net.Fit(tc, db, train, valid)
	after := net.Loss(tc, test)
	if after >= before {
		t.Fatalf("training did not improve test loss: %v -> %v", before, after)
	}
	if mape := testMAPE(net, test); mape > 1.5 {
		t.Fatalf("test MAPE after training too high: %v", mape)
	}
}

func testMAPE(est interface {
	Estimate(x []float64, t float64) float64
}, queries []vecdata.Query) float64 {
	var s float64
	for _, q := range queries {
		s += math.Abs(est.Estimate(q.X, q.T)-q.Y) / q.Y
	}
	return s / float64(len(queries))
}

// Consistency survives training (the guarantee is structural, not
// data-dependent).
func TestTrainedModelStillMonotone(t *testing.T) {
	db, wl := testWorkload(9, 500, 5, 30, 6)
	rng := rand.New(rand.NewSource(10))
	train, valid, _ := wl.Split(rng)
	net := NewNet(rng, db.Dim, tinyConfig(wl.TMax))
	tc := tinyTrainConfig()
	tc.Epochs = 10
	net.Fit(tc, db, train, valid)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := db.Vecs[r.Intn(db.Size())]
		t1 := r.Float64() * wl.TMax
		t2 := t1 + r.Float64()*wl.TMax
		return net.Estimate(x, t1) <= net.Estimate(x, t2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMAEAndLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := NewNet(rng, 3, tinyConfig(1))
	queries := []vecdata.Query{
		{X: []float64{0, 0, 0}, T: 0.5, Y: 10},
		{X: []float64{1, 1, 1}, T: 0.7, Y: 20},
	}
	mae := net.MAE(queries)
	if mae < 0 {
		t.Fatalf("MAE negative")
	}
	if net.MAE(nil) != 0 {
		t.Fatalf("empty MAE should be 0")
	}
	loss := net.Loss(tinyTrainConfig(), queries)
	if loss <= 0 {
		t.Fatalf("untrained loss should be positive, got %v", loss)
	}
}

// TestConcurrentInference verifies the documented guarantee that
// Estimate/EstimateBatch/ControlPoints are read-only and safe for
// concurrent use (the serving layer depends on it); run with -race, and
// check results are independent of interleaving.
func TestConcurrentInference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := NewNet(rng, 5, tinyConfig(1))
	const goroutines = 8
	queries := make([][]float64, goroutines)
	want := make([]float64, goroutines)
	for i := range queries {
		queries[i] = make([]float64, 5)
		for j := range queries[i] {
			queries[i][j] = rng.Float64()
		}
		want[i] = net.Estimate(queries[i], 0.4)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := net.Estimate(queries[g], 0.4); got != want[g] {
					t.Errorf("goroutine %d: estimate %v, want %v", g, got, want[g])
					return
				}
				net.ControlPoints(queries[g])
			}
		}(g)
	}
	wg.Wait()
}
