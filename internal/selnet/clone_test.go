package selnet

import (
	"math"
	"math/rand"
	"testing"

	"selnet/internal/tensor"
)

func TestNetCloneMatchesAndIsolates(t *testing.T) {
	db, wl := testWorkload(40, 300, 4, 8, 4)
	rng := rand.New(rand.NewSource(41))
	n := NewNet(rng, db.Dim, tinyConfig(wl.TMax))
	c := n.Clone()
	if c.Name() != n.Name() || c.Dim() != n.Dim() || c.TMax() != n.TMax() {
		t.Fatalf("clone metadata differs")
	}
	for _, q := range wl.Queries[:10] {
		if got, want := c.Estimate(q.X, q.T), n.Estimate(q.X, q.T); got != want {
			t.Fatalf("clone estimate %v != original %v", got, want)
		}
	}
	// Mutating the clone's parameters must not leak into the original.
	before := n.Estimate(wl.Queries[0].X, wl.Queries[0].T)
	for _, pr := range c.Params() {
		pr.Value.Set(0, 0, pr.Value.At(0, 0)+1)
	}
	if after := n.Estimate(wl.Queries[0].X, wl.Queries[0].T); after != before {
		t.Fatalf("mutating clone changed original estimate: %v -> %v", before, after)
	}
}

func TestNetCloneRetrainLeavesOriginalUntouched(t *testing.T) {
	db, wl := testWorkload(42, 400, 4, 12, 4)
	rng := rand.New(rand.NewSource(43))
	train, valid, _ := wl.Split(rng)
	n := NewNet(rng, db.Dim, tinyConfig(wl.TMax))
	snaps := snapshotParams(n.Params())
	shadow := n.Clone()
	tc := tinyTrainConfig()
	shadow.FitEpochsUntilNoImprovement(tc, train, valid, 2, 3)
	for i, pr := range n.Params() {
		for r := 0; r < pr.Value.Rows(); r++ {
			for c := 0; c < pr.Value.Cols(); c++ {
				if pr.Value.At(r, c) != snaps[i].At(r, c) {
					t.Fatalf("shadow retraining mutated original param %d", i)
				}
			}
		}
	}
}

func TestPartitionedCloneMatchesAndIsolates(t *testing.T) {
	db, wl := testWorkload(44, 300, 4, 8, 4)
	rng := rand.New(rand.NewSource(45))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	c, err := p.Clone()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range wl.Queries[:10] {
		got, want := c.Estimate(q.X, q.T), p.Estimate(q.X, q.T)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("clone estimate %v != original %v", got, want)
		}
	}
	// Cluster bookkeeping on the clone must not leak into the original.
	before := append([]int(nil), p.ClusterSizes()...)
	c.ApplyInsert([][]float64{append([]float64(nil), db.Vecs[0]...)})
	for i, s := range p.ClusterSizes() {
		if s != before[i] {
			t.Fatalf("clone ApplyInsert changed original cluster sizes")
		}
	}
	// Parameter mutation on the clone must not leak either.
	e0 := p.Estimate(wl.Queries[0].X, wl.Queries[0].T)
	for _, pr := range c.Params() {
		pr.Value.Set(0, 0, pr.Value.At(0, 0)+1)
	}
	if e1 := p.Estimate(wl.Queries[0].X, wl.Queries[0].T); e1 != e0 {
		t.Fatalf("mutating clone changed original estimate: %v -> %v", e0, e1)
	}
}

func TestPartitionedEstimateBatchMatchesEstimate(t *testing.T) {
	db, wl := testWorkload(46, 400, 4, 12, 5)
	rng := rand.New(rand.NewSource(47))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	qs := wl.Queries[:32]
	x := tensor.New(len(qs), db.Dim)
	ts := make([]float64, len(qs))
	for i, q := range qs {
		copy(x.Row(i), q.X)
		ts[i] = q.T
	}
	// Include thresholds beyond TMax and at zero to exercise clamping.
	ts[0] = wl.TMax * 2
	ts[1] = 0
	got := p.EstimateBatch(x, ts)
	for i := range qs {
		want := p.Estimate(x.Row(i), ts[i])
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("row %d: batch %v != single %v", i, got[i], want)
		}
	}
	if out := p.EstimateBatch(tensor.New(0, db.Dim), nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d values", len(out))
	}
}

func TestPartitionedEstimateBatchPanicsOnShapeMismatch(t *testing.T) {
	db, wl := testWorkload(48, 150, 4, 5, 3)
	rng := rand.New(rand.NewSource(49))
	p := NewPartitioned(rng, db, tinyPartitionedConfig(wl.TMax))
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on rows/thresholds mismatch")
		}
	}()
	p.EstimateBatch(tensor.New(2, db.Dim), []float64{0.1})
}
