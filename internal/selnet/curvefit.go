package selnet

import (
	"math"
	"math/rand"

	"selnet/internal/autodiff"
	"selnet/internal/nn"
	"selnet/internal/tensor"
)

// CurveFitter is the standalone one-dimensional piece-wise linear model
// used in the paper's Figure 3: it fits a set of (t, y) pairs with
// NumPoints control points whose positions AND heights are both learned —
// the property that lets it concentrate control points where the curve
// bends, unlike a DLN calibrator's fixed equally-spaced keypoints
// (Sec. 6.2). No query vector is involved; the parameters are free.
type CurveFitter struct {
	numPoints int
	tmax      float64
	rawTau    *nn.Param // 1 x (numPoints-1) increments through Norml2
	rawP      *nn.Param // 1 x numPoints increments through Softplus
	// yScale normalizes targets during fitting so Adam's per-coordinate
	// step size is not the bottleneck when the curve spans orders of
	// magnitude; Eval multiplies it back.
	yScale float64
}

// NewCurveFitter builds a fitter with the given number of control points
// covering [0, tmax]. numPoints must be at least 2.
func NewCurveFitter(rng *rand.Rand, numPoints int, tmax float64) *CurveFitter {
	if numPoints < 2 {
		panic("selnet: CurveFitter needs at least 2 control points")
	}
	c := &CurveFitter{
		numPoints: numPoints,
		tmax:      tmax,
		rawTau:    nn.NewParam("curvefit.tau", 1, numPoints-1),
		rawP:      nn.NewParam("curvefit.p", 1, numPoints),
		yScale:    1,
	}
	for j := 0; j < numPoints-1; j++ {
		c.rawTau.Value.Set(0, j, 1+0.01*rng.NormFloat64())
	}
	for j := 0; j < numPoints; j++ {
		c.rawP.Value.Set(0, j, 0.1*rng.NormFloat64())
	}
	return c
}

// controlNodes assembles the (τ, p) rows tiled to n batch rows.
// Increments of p go through Softplus rather than ReLU: with free
// parameters (no query input to keep them alive), ReLU units that go
// negative would never recover gradient.
func (c *CurveFitter) controlNodes(tp *autodiff.Tape, n int) (tau, p *autodiff.Node) {
	deltaTau := tp.Scale(tp.Norml2(c.rawTau.Node(tp), 1e-6), c.tmax)
	interior := tp.PrefixSumCols(deltaTau)
	zero := tp.Input(tensor.New(1, 1))
	tauRow := tp.ConcatCols(zero, interior)
	pRow := tp.PrefixSumCols(tp.Softplus(c.rawP.Node(tp)))
	return tp.RepeatRows(tauRow, n), tp.RepeatRows(pRow, n)
}

// Fit trains the control points on (ts, ys) with MSE on scale-normalized
// targets (Figure 3 fits the raw curve, not log values). It returns the
// final loss in original y units squared.
func (c *CurveFitter) Fit(ts, ys []float64, epochs int, lr float64) float64 {
	if len(ts) != len(ys) || len(ts) == 0 {
		panic("selnet: CurveFitter.Fit needs matching non-empty samples")
	}
	c.yScale = 1
	for _, y := range ys {
		if a := math.Abs(y); a > c.yScale {
			c.yScale = a
		}
	}
	tcol := tensor.ColVector(ts)
	ycol := tensor.New(len(ys), 1)
	for i, y := range ys {
		ycol.Set(i, 0, y/c.yScale)
	}
	opt := nn.NewAdam(lr)
	params := []*nn.Param{c.rawTau, c.rawP}
	var last float64
	for e := 0; e < epochs; e++ {
		tp := autodiff.NewTape()
		tau, p := c.controlNodes(tp, len(ts))
		yhat := tp.PWLInterp(tau, p, tp.Input(tcol))
		loss := tp.MSELoss(yhat, tp.Input(ycol))
		tp.Backward(loss)
		opt.Step(params)
		last = loss.Scalar()
	}
	return last * c.yScale * c.yScale
}

// Eval returns the fitted curve's value at t.
func (c *CurveFitter) Eval(t float64) float64 {
	tp := autodiff.NewTape()
	tau, p := c.controlNodes(tp, 1)
	return c.yScale * tp.PWLInterp(tau, p, tp.Input(tensor.FromRows([][]float64{{t}}))).Scalar()
}

// ControlPoints returns the learned (τ, p) vectors in original y units.
func (c *CurveFitter) ControlPoints() (tau, p []float64) {
	tp := autodiff.NewTape()
	tauN, pN := c.controlNodes(tp, 1)
	tau = append([]float64(nil), tauN.Value.Row(0)...)
	p = append([]float64(nil), pN.Value.Row(0)...)
	for i := range p {
		p[i] *= c.yScale
	}
	return tau, p
}
