// Package selnet implements the paper's primary contribution: a
// consistent, query-dependent piece-wise linear selectivity estimator
// (Sec. 5). The estimator fˆ(x, t, D; Θ) is a continuous piece-wise
// linear function of the threshold t whose L+2 control points
// Θ = {(τ_i, p_i)} are generated per query by neural networks:
//
//   - an autoencoder produces a latent representation z_x of the query,
//     and the enhanced input [x; z_x] feeds the generators (Sec. 5.2);
//   - τ increments come from an FFN through the Norml2 normalized-square
//     transform scaled by t_max, so the τ_i are non-decreasing and end
//     exactly at t_max;
//   - p increments come from Model M — an encoder producing L+2 embedding
//     blocks and a per-block linear decoder with ReLU — so the p_i are
//     non-decreasing (Lemma 1 gives consistency by construction);
//   - the training objective is the Huber loss on log selectivities plus
//     λ times the autoencoder reconstruction loss (Eq. 2 and 4).
//
// The package also provides the ablations of Sec. 7.4 (SelNet-ct without
// partitioning, SelNet-ad-ct without query-dependent τ), the partitioned
// estimator of Sec. 5.3, the incremental-update procedure of Sec. 5.4,
// and the standalone curve fitter used in the paper's Figure 3.
package selnet

import (
	"fmt"
	"math"
	"math/rand"

	"selnet/internal/autodiff"
	"selnet/internal/nn"
	"selnet/internal/tensor"
)

// Config defines the SelNet architecture. Comments give the paper's
// values (Appendix B.2); defaults are scaled for the synthetic datasets.
type Config struct {
	// L is the number of interior control points (paper: 50).
	L int
	// EmbedDim is the width |h_i| of Model M's per-point embeddings
	// (paper: 100).
	EmbedDim int
	// AEHidden and AELatent size the autoencoder (paper: three hidden
	// layers per half).
	AEHidden []int
	AELatent int
	// TauHidden sizes the τ generator FFN (paper: two hidden layers).
	TauHidden []int
	// MHidden sizes Model M's encoder FFN (paper: four hidden layers).
	MHidden []int
	// TMax is the largest supported threshold; τ_{L+1} = TMax.
	TMax float64
	// Lambda weights the autoencoder loss in the objective (Eq. 4).
	Lambda float64
	// QueryDependentTau disables the SelNet-ad-ct ablation when true: if
	// false, the τ generator receives a constant vector instead of
	// [x; z_x], so every query shares the same τ (Sec. 7.4).
	QueryDependentTau bool
	// NormEps is the ε of Norml2 and of threshold padding.
	NormEps float64
	// SoftmaxTau replaces Norml2 with a softmax when generating the τ
	// increments — the alternative Sec. 5.2 argues against (its
	// exponential makes the output hypersensitive to small input
	// changes). Kept as an ablation switch.
	SoftmaxTau bool
}

// DefaultConfig returns an architecture scaled to the synthetic
// experiments; TMax must still be set from the workload.
func DefaultConfig() Config {
	return Config{
		L:                 20,
		EmbedDim:          16,
		AEHidden:          []int{48, 32},
		AELatent:          8,
		TauHidden:         []int{48, 48},
		MHidden:           []int{64, 64, 48},
		Lambda:            0.1,
		QueryDependentTau: true,
		NormEps:           1e-6,
	}
}

// TrainConfig holds optimization settings.
type TrainConfig struct {
	Epochs     int
	Batch      int
	LR         float64
	HuberDelta float64 // paper: 1.345
	LogEps     float64 // padding inside the log loss
	Seed       int64
	// EvalEvery snapshots the best-validation parameters every this many
	// epochs (0 disables).
	EvalEvery int
	// AEPretrainEpochs pretrains the autoencoder on database objects
	// before estimator training (Sec. 5.2).
	AEPretrainEpochs int
	// AEPretrainSample bounds how many database vectors are used for
	// pretraining.
	AEPretrainSample int
	// Loss selects the estimation loss (default LossHuberLog; see the
	// Sec. 5.1 discussion and the loss ablation bench).
	Loss LossKind
}

// DefaultTrainConfig returns the harness defaults.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs: 60, Batch: 128, LR: 5e-3, HuberDelta: 1.345, LogEps: 1e-3,
		Seed: 1, EvalEvery: 5, AEPretrainEpochs: 30, AEPretrainSample: 2000,
	}
}

// Net is a single (unpartitioned) SelNet model — the SelNet-ct ablation,
// and the local-model building block of the partitioned estimator.
type Net struct {
	cfg Config
	dim int

	ae     *nn.Autoencoder
	tauNet *nn.FFN   // [x; z] -> L+1 raw increments
	mEnc   *nn.FFN   // [x; z] -> (L+2)*EmbedDim block embeddings
	mDecW  *nn.Param // (L+2) x EmbedDim per-block decoder weights
	mDecB  *nn.Param // 1 x (L+2) per-block decoder biases

	name  string
	plans netPlans // compiled inference plans, built lazily (plan.go)
}

// NewNet builds a SelNet for dim-dimensional queries. cfg.TMax must be
// positive.
func NewNet(rng *rand.Rand, dim int, cfg Config) *Net {
	return NewNetWithAE(rng, dim, cfg, nn.NewAutoencoder(rng, dim, cfg.AEHidden, cfg.AELatent))
}

// NewNetWithAE builds a SelNet around an existing (possibly shared)
// autoencoder. The partitioned estimator of Sec. 5.3 uses this: "all
// local models share the same transformed input representation [x; z_x],
// but each has its own neural networks to learn the control parameters".
func NewNetWithAE(rng *rand.Rand, dim int, cfg Config, ae *nn.Autoencoder) *Net {
	if cfg.TMax <= 0 {
		panic("selnet: Config.TMax must be positive")
	}
	if cfg.L < 1 {
		panic("selnet: Config.L must be at least 1")
	}
	in := dim + cfg.AELatent
	tauSizes := append(append([]int{in}, cfg.TauHidden...), cfg.L+1)
	mSizes := append(append([]int{in}, cfg.MHidden...), (cfg.L+2)*cfg.EmbedDim)
	n := &Net{
		cfg:    cfg,
		dim:    dim,
		ae:     ae,
		tauNet: nn.NewFFN(rng, "selnet.tau", tauSizes, nn.ActReLU, nn.ActNone),
		mEnc:   nn.NewFFN(rng, "selnet.menc", mSizes, nn.ActReLU, nn.ActNone),
		mDecW:  nn.NewParam("selnet.mdecW", cfg.L+2, cfg.EmbedDim),
		mDecB:  nn.NewParam("selnet.mdecB", 1, cfg.L+2),
		name:   "SelNet-ct",
	}
	nn.XavierInit(rng, n.mDecW.Value, cfg.EmbedDim, 1)
	if !cfg.QueryDependentTau {
		n.name = "SelNet-ad-ct"
	}
	return n
}

// Params returns every trainable tensor of the model, including the
// autoencoder's.
func (n *Net) Params() []*nn.Param {
	return append(append([]*nn.Param{}, n.ae.Params()...), n.HeadParams()...)
}

// HeadParams returns the control-point generator parameters only
// (excluding the autoencoder); the partitioned model uses this to avoid
// double-counting a shared autoencoder.
func (n *Net) HeadParams() []*nn.Param {
	ps := append([]*nn.Param{}, n.tauNet.Params()...)
	ps = append(ps, n.mEnc.Params()...)
	ps = append(ps, n.mDecW, n.mDecB)
	return ps
}

// Dim returns the query dimensionality.
func (n *Net) Dim() int { return n.dim }

// TMax returns the maximum supported threshold.
func (n *Net) TMax() float64 { return n.cfg.TMax }

// controlPoints builds the τ and p control-point nodes for a batch of
// queries (the network of Figure 1). The returned aeLoss is the
// reconstruction loss node for the same batch.
func (n *Net) controlPoints(tp *autodiff.Tape, x *autodiff.Node) (tau, p, aeLoss *autodiff.Node) {
	aeLoss, z := n.ae.ReconstructionLoss(tp, x)
	enhanced := tp.ConcatCols(x, z)
	tau, p = n.controlPointsFromEnhanced(tp, enhanced)
	return tau, p, aeLoss
}

// controlPointsInference is the estimation-time variant: it runs only the
// autoencoder's encoder (the decoder exists solely for the training loss),
// roughly halving the autoencoder cost per estimate.
func (n *Net) controlPointsInference(tp *autodiff.Tape, x *autodiff.Node) (tau, p *autodiff.Node) {
	z := n.ae.Encode(tp, x)
	return n.controlPointsFromEnhanced(tp, tp.ConcatCols(x, z))
}

// controlPointsFromEnhanced builds (τ, p) from a precomputed enhanced
// input [x; z_x]; the partitioned model shares one enhanced batch across
// all local heads.
func (n *Net) controlPointsFromEnhanced(tp *autodiff.Tape, enhanced *autodiff.Node) (tau, p *autodiff.Node) {
	// τ generator. For SelNet-ad-ct the generator sees a constant vector,
	// making τ identical across queries (Sec. 7.4).
	tauIn := enhanced
	if !n.cfg.QueryDependentTau {
		ones := tensor.New(enhanced.Rows(), n.dim+n.cfg.AELatent)
		ones.Fill(1)
		tauIn = tp.Input(ones)
	}
	rawTau := n.tauNet.Apply(tp, tauIn)
	var deltaTau *autodiff.Node
	if n.cfg.SoftmaxTau {
		deltaTau = tp.Scale(tp.Softmax(rawTau), n.cfg.TMax)
	} else {
		deltaTau = tp.Scale(tp.Norml2(rawTau, n.cfg.NormEps), n.cfg.TMax)
	}
	interior := tp.PrefixSumCols(deltaTau) // B x (L+1), last column = TMax exactly
	zeros := tp.Input(tensor.New(enhanced.Rows(), 1))
	tau = tp.ConcatCols(zeros, interior) // B x (L+2), τ_0 = 0

	// Model M: encoder to (L+2) embedding blocks, per-block linear + ReLU
	// decoder produces non-negative increments k_i, prefix-summed into p.
	emb := n.mEnc.Apply(tp, enhanced)
	k := tp.ReLU(tp.BlockLinear(emb, n.mDecW.Node(tp), n.mDecB.Node(tp), n.cfg.L+2, n.cfg.EmbedDim))
	p = tp.PrefixSumCols(k)
	return tau, p
}

// forward estimates selectivities for a batch: x is batch x dim, t is
// batch x 1 (as tape inputs); it returns (yhat, aeLoss) nodes.
func (n *Net) forward(tp *autodiff.Tape, x, t *autodiff.Node) (yhat, aeLoss *autodiff.Node) {
	tau, p, aeLoss := n.controlPoints(tp, x)
	return tp.PWLInterp(tau, p, t), aeLoss
}

// Estimate returns the estimated selectivity for a single query. The
// threshold is clamped into [0, TMax]; Lemma 1 guarantees the result is
// non-decreasing in t.
//
// Estimate, EstimateBatch and ControlPoints are safe for concurrent use:
// each call checks a compiled plan out of the model's pool (plan.go) and
// only reads the shared parameter tensors. They must not run
// concurrently with Fit or Update, which mutate the parameters in place
// — the serving layer (internal/serve) gets this isolation by
// hot-swapping whole models instead of retraining live ones. Steady
// state performs zero heap allocations.
func (n *Net) Estimate(x []float64, t float64) float64 {
	if len(x) != n.dim {
		panic(fmt.Sprintf("selnet: query has dim %d, model expects %d", len(x), n.dim))
	}
	pool := n.planPool()
	pl := pool.Get(1)
	copy(pl.X.Row(0), x)
	pl.T.Set(0, 0, clamp(t, 0, n.cfg.TMax))
	pl.Run()
	v := pl.Out.At(0, 0)
	pool.Put(pl)
	if v < 0 {
		v = 0
	}
	return v
}

// EstimateBatch estimates selectivities for several (query, threshold)
// pairs at once; x is rows x dim and ts has one threshold per row. The
// allocation-free variant is EstimateBatchInto.
func (n *Net) EstimateBatch(x *tensor.Dense, ts []float64) []float64 {
	if x.Rows() != len(ts) {
		panic(fmt.Sprintf("selnet: %d query rows but %d thresholds", x.Rows(), len(ts)))
	}
	out := make([]float64, len(ts))
	n.EstimateBatchInto(out, x, ts)
	return out
}

// ControlPoints returns the learned (τ, p) vectors for one query — the
// data plotted in the paper's Figure 4.
func (n *Net) ControlPoints(x []float64) (tau, p []float64) {
	if len(x) != n.dim {
		panic(fmt.Sprintf("selnet: query has dim %d, model expects %d", len(x), n.dim))
	}
	pool := n.planPool()
	pl := pool.Get(1)
	copy(pl.X.Row(0), x)
	pl.T.Set(0, 0, 0)
	pl.Run()
	tau = append([]float64(nil), pl.Tau.Row(0)...)
	p = append([]float64(nil), pl.P.Row(0)...)
	pool.Put(pl)
	return tau, p
}

// Name returns the model's display name ("SelNet-ct" or "SelNet-ad-ct").
func (n *Net) Name() string { return n.name }

// ConsistencyGuaranteed reports that monotonicity holds by construction.
func (n *Net) ConsistencyGuaranteed() bool { return true }

func clamp(v, lo, hi float64) float64 {
	return math.Min(hi, math.Max(lo, v))
}
