package selnet

import (
	"math"
	"math/rand"
	"testing"
)

// The Figure 3 target: y = exp(t)/10 on [0, 10].
func fig3Curve(t float64) float64 { return math.Exp(t) / 10 }

func TestCurveFitterFitsExpCurve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// 80 random samples, as in the paper.
	ts := make([]float64, 80)
	ys := make([]float64, 80)
	for i := range ts {
		ts[i] = rng.Float64() * 10
		ys[i] = fig3Curve(ts[i])
	}
	c := NewCurveFitter(rng, 8, 10)
	c.Fit(ts, ys, 4000, 0.1)
	c.Fit(ts, ys, 4000, 0.02)
	c.Fit(ts, ys, 4000, 0.005)
	// The fit is judged as in Figure 3 — on linear axes over the whole
	// range: RMSE over a grid, normalized by the curve's range. (MSE
	// training makes low-t relative error irrelevant, exactly as in the
	// paper's plot.)
	var sse float64
	n := 0
	for probe := 0.0; probe <= 10; probe += 0.1 {
		d := c.Eval(probe) - fig3Curve(probe)
		sse += d * d
		n++
	}
	rmse := math.Sqrt(sse/float64(n)) / fig3Curve(10)
	if rmse > 0.03 {
		t.Fatalf("range-normalized RMSE %v too high", rmse)
	}
}

// The learned control points must concentrate in the "interesting area"
// (large t where the exponential changes fast) — the paper's Figure 3
// claim.
func TestCurveFitterConcentratesControlPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ts := make([]float64, 80)
	ys := make([]float64, 80)
	for i := range ts {
		ts[i] = rng.Float64() * 10
		ys[i] = fig3Curve(ts[i])
	}
	c := NewCurveFitter(rng, 8, 10)
	c.Fit(ts, ys, 4000, 0.1)
	c.Fit(ts, ys, 4000, 0.02)
	c.Fit(ts, ys, 4000, 0.005)
	tau, _ := c.ControlPoints()
	// Count interior control points in the upper half [5, 10] vs lower.
	var upper, lower int
	for _, v := range tau[1 : len(tau)-1] {
		if v >= 5 {
			upper++
		} else {
			lower++
		}
	}
	if upper <= lower {
		t.Fatalf("control points not concentrated where the curve bends: %d upper vs %d lower (tau=%v)",
			upper, lower, tau)
	}
}

func TestCurveFitterMonotoneOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewCurveFitter(rng, 6, 10)
	// Even untrained, the fitted function must be monotone.
	prev := math.Inf(-1)
	for tt := 0.0; tt <= 10; tt += 0.25 {
		v := c.Eval(tt)
		if v < prev-1e-9 {
			t.Fatalf("curve fitter not monotone at %v", tt)
		}
		prev = v
	}
}

func TestCurveFitterControlPointEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewCurveFitter(rng, 8, 10)
	tau, p := c.ControlPoints()
	if len(tau) != 8 || len(p) != 8 {
		t.Fatalf("expected 8 control points, got %d/%d", len(tau), len(p))
	}
	if tau[0] != 0 || math.Abs(tau[7]-10) > 1e-9 {
		t.Fatalf("tau endpoints wrong: %v", tau)
	}
}

func TestCurveFitterPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected panic for 1 control point")
			}
		}()
		NewCurveFitter(rng, 1, 10)
	}()
	c := NewCurveFitter(rng, 4, 10)
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected panic for empty fit data")
			}
		}()
		c.Fit(nil, nil, 10, 0.01)
	}()
}
