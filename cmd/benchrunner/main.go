// Command benchrunner regenerates every table and figure of the paper's
// evaluation section (Sec. 7) and prints them in the paper's layout. By
// default it runs all experiments at the quick scale; use -full for the
// fidelity scale (slower) or -exp to select a single artifact.
//
//	benchrunner                 # everything, quick scale
//	benchrunner -full           # everything, full scale
//	benchrunner -exp table3     # only Table 3
//	benchrunner -exp figure5    # only Figure 5 (both datasets)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"selnet/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run at full (fidelity) scale instead of quick scale")
	exp := flag.String("exp", "all", "experiment to run: all, table1..table11, figure3..figure5, ablations")
	flag.Parse()

	cfg := experiments.QuickConfig()
	if *full {
		cfg = experiments.FullConfig()
	}

	type job struct {
		key string
		run func() fmt.Stringer
	}
	jobs := []job{
		{"table1", func() fmt.Stringer { return experiments.RunAccuracyTable(cfg, "fasttext-cos") }},
		{"table2", func() fmt.Stringer { return experiments.RunAccuracyTable(cfg, "fasttext-l2") }},
		{"table3", func() fmt.Stringer { return experiments.RunAccuracyTable(cfg, "face-cos") }},
		{"table4", func() fmt.Stringer { return experiments.RunAccuracyTable(cfg, "youtube-cos") }},
		{"table5", func() fmt.Stringer { return experiments.RunMonotonicityTable(cfg) }},
		{"table6", func() fmt.Stringer { return experiments.RunAblationTable(cfg) }},
		{"table7", func() fmt.Stringer { return experiments.RunTimingTable(cfg) }},
		{"table8", func() fmt.Stringer { return experiments.RunControlPointSweep(cfg) }},
		{"table9", func() fmt.Stringer { return experiments.RunPartitionSizeSweep(cfg) }},
		{"table10", func() fmt.Stringer { return experiments.RunPartitionMethodTable(cfg) }},
		{"table11", func() fmt.Stringer { return experiments.RunBetaWorkloadTable(cfg) }},
		{"figure3", func() fmt.Stringer { return experiments.RunFigure3(cfg) }},
		{"figure4", func() fmt.Stringer { return experiments.RunFigure4(cfg) }},
		{"figure5", func() fmt.Stringer {
			a := experiments.RunFigure5(cfg, "face-cos")
			b := experiments.RunFigure5(cfg, "fasttext-cos")
			return twoResults{a, b}
		}},
		{"ablations", func() fmt.Stringer {
			return threeResults{
				experiments.RunTauTransformAblation(cfg),
				experiments.RunLossAblation(cfg),
				experiments.RunTrainingModeAblation(cfg),
			}
		}},
	}

	want := strings.ToLower(*exp)
	ran := 0
	for _, j := range jobs {
		if want != "all" && want != j.key {
			continue
		}
		start := time.Now()
		result := j.run()
		fmt.Printf("=== %s (took %v) ===\n%s\n", j.key, time.Since(start).Round(time.Millisecond), result)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

type twoResults struct{ a, b fmt.Stringer }

func (t twoResults) String() string { return t.a.String() + "\n" + t.b.String() }

type threeResults struct{ a, b, c fmt.Stringer }

func (t threeResults) String() string {
	return t.a.String() + "\n" + t.b.String() + "\n" + t.c.String()
}
