// Command selestd is the selectivity-estimation serving daemon: it
// loads trained .gob models (from 'selest train', or any estimator
// saved through the kind-tagged model codec — SelNet, KDE, LSH
// sampling, GBM, the deep baselines) and serves estimates over HTTP
// with batched inference, an LRU estimate cache, hot-swappable models,
// and — for models attached to a database via -data — streaming
// insert/delete ingestion with Sec. 5.4 shadow retraining. Estimators
// without an incremental-training path degrade by capability: LSH
// refreshes its derived state against the updated database, static
// kinds keep serving while the database and journal absorb updates.
//
//	selestd -addr :8080 -model default=model.gob -data default=vectors.csv
//
// API (JSON):
//
//	GET  /healthz                   liveness probe
//	GET  /stats                     server, cache, ingest, per-model counters
//	GET  /metrics                   Prometheus text exposition
//	GET  /debug/traces              recent + slowest request spans (see -trace-slow)
//	GET  /debug/accuracy            shadow-scored q-error breakdowns (see -shadow-sample)
//	GET  /v1/buildinfo              binary version, go version, uptime
//	GET  /v1/cluster                shard map: model -> replicas/leader (with -cluster-peers)
//	GET  /v1/models                 list loaded models
//	POST /v1/models/{name}          load or hot-swap a model: {"path": "model.gob"}
//	POST /v1/models/{name}/update   {"insert": [[...]], "delete": [[...]]}
//	POST /v1/estimate               {"model": "default", "query": [...], "t": 0.2}
//	POST /v1/estimate/batch         {"model": "default", "queries": [[...], ...], "ts": [...]}
//
// Updates are journaled per model and answered 202 immediately (429
// under queue backpressure); a background worker coalesces pending
// batches, applies them to the model's private database copy, runs the
// δ_U accuracy check on a shadow clone, and hot-swaps the retrained
// shadow in — serving traffic never blocks on retraining.
//
// With -journal-dir set, the update journal is crash-durable: every
// accepted batch is fsynced to a per-model write-ahead log before the
// 202, a background snapshotter persists each model's database and
// weights so the log stays bounded, and on boot the daemon recovers —
// snapshot load, corrupt-tail truncation, replay of the surviving
// records through the δ_U pipeline — so a SIGKILL loses nothing that
// was acknowledged.
//
// Models may be any servable estimator kind — single or partitioned
// SelNet, KDE, LSH sampling, GBM, DNN/MoE/RMI, DLN, UMNN — saved with
// the kind-tagged codec; the loader sniffs the kind (legacy SelNet
// files included) and every kind serves estimates and hot-swaps.
//
// With -router set, requests naming "default" (when no concrete model
// holds that name) or "auto" are routed across the loaded models:
// "auto" picks per query dimension — a sampling-backed estimator when
// its data size is within the VC bound m* = (d+1+ln(1/δ))/(2ε²), a
// SelNet-class model in high dimension — "ensemble" blends every
// dimension-compatible model in log space, and an explicit kind slug
// ("kde", "lsh", ...) pins the virtual names to that kind. Decisions
// are surfaced in /stats (router section) and /metrics
// (selestd_router_decisions_total).
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops, open
// requests finish, the ingest journals drain (every accepted batch is
// applied), and in-flight inference batches drain.
//
// With -cluster-peers set, several selestd processes form one serving
// group: models are placed on nodes by consistent hashing with
// -cluster-replicas-way replication, each model's leader streams its
// write-ahead log to the follower replicas, reads fan out to any
// replica, updates are proxied to the leader (and acknowledged only
// after -cluster-ack followers journaled them), and leadership fails
// over to the most caught-up follower when the leader stops answering
// heartbeats. GET /v1/cluster serves the shard map. Clustering requires
// -journal-dir (replication streams the WAL) and every clustered model
// needs a -data attachment.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"selnet/internal/cluster"
	"selnet/internal/distance"
	"selnet/internal/infer"
	"selnet/internal/ingest"
	"selnet/internal/modelcodec"
	"selnet/internal/obs"
	"selnet/internal/selnet"
	"selnet/internal/serve"
	"selnet/internal/vecdata"
)

// repeatedFlags collects repeated name=value arguments.
type repeatedFlags []string

func (m *repeatedFlags) String() string { return strings.Join(*m, ",") }

func (m *repeatedFlags) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// ingestOptions carries the -update-*, retrain, and journal flag values.
type ingestOptions struct {
	queueDepth     int
	coalesceMax    int
	retrainWorkers int
	deltaU         float64
	patience       int
	maxEpochs      int
	queries        int
	dist           distance.Func
	journalDir     string
	snapshotEvery  int
	compactBytes   int64
	syncInterval   time.Duration
	drift          *obs.DriftMonitor
	shadow         *obs.Shadow
	workload       *obs.WorkloadMonitor
	oracleBudget   int
}

// clusterOptions carries the -cluster-* flag values.
type clusterOptions struct {
	self       string
	peers      []string
	replicas   int
	heartbeat  time.Duration
	failover   time.Duration
	ack        int
	ackTimeout time.Duration
}

func (c clusterOptions) enabled() bool { return len(c.peers) > 0 }

// parsePeers splits a comma-separated peer list into normalized base
// URLs (trailing slashes stripped, empties dropped).
func parsePeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// obsOptions carries the observability flag values.
type obsOptions struct {
	debugAddr     string
	traceSlow     time.Duration
	driftQError   float64
	kernelTiming  bool
	accessLog     bool
	shadowSample  float64
	shadowBudget  int
	workloadShift float64
	mutexFraction int
	blockRate     int
}

func main() {
	var models, data repeatedFlags
	addr := flag.String("addr", ":8080", "listen address")
	maxBatch := flag.Int("max-batch", 32, "max requests fused into one inference batch")
	flush := flag.Duration("flush", 2*time.Millisecond, "max wait for a batch to fill before flushing")
	lanes := flag.Int("workers", 0, "coalescer lanes per model (independent batching shards; 0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 4096, "LRU estimate cache capacity (0 disables)")
	quantum := flag.Float64("quantum", 1e-6, "cache key quantization step for query coordinates and thresholds")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	updateQueue := flag.Int("update-queue", 64, "pending update batches per model before 429 backpressure")
	coalesce := flag.Int("coalesce", 8, "max update batches fused into one retrain cycle")
	retrainWorkers := flag.Int("retrain-workers", 1, "concurrent shadow retrains across all models")
	deltaU := flag.Float64("delta-u", 1.0, "MAE-change threshold delta_U gating incremental retraining (Sec. 5.4)")
	patience := flag.Int("retrain-patience", 3, "non-improving epochs that stop incremental retraining")
	maxEpochs := flag.Int("retrain-epochs", 30, "max incremental epochs per retrain cycle")
	updateQueries := flag.Int("update-queries", 32, "query vectors in the generated delta_U validation workload")
	distName := flag.String("dist", "l2", "distance function for -data CSV databases: l2 or cosine")
	journalDir := flag.String("journal-dir", "", "directory for the durable update journal (empty keeps it in memory)")
	snapshotEvery := flag.Int("snapshot-every", 64, "applied update batches between durable snapshots (with -journal-dir)")
	compactBytes := flag.Int64("journal-compact-bytes", 4<<20, "WAL size forcing a snapshot+compaction (with -journal-dir)")
	syncInterval := flag.Duration("journal-sync-interval", 0, "tick-based WAL fsync window: batch records per fsync at the cost of up to this much added ack latency (0 = fsync per group commit)")
	debugAddr := flag.String("debug-addr", "", "secondary listen address serving net/http/pprof under /debug/pprof/ (empty disables)")
	traceSlow := flag.Duration("trace-slow", 100*time.Millisecond, "requests at least this slow are retained in the /debug/traces slowest-N list")
	driftQError := flag.Float64("drift-qerror", 0, "rolling p95 q-error above which an ingest cycle counts as drift_exceeded (0 disables the alarm counter)")
	kernelTiming := flag.Bool("kernel-timing", true, "accumulate per-kernel plan-execution timings (surfaced in /stats and /metrics)")
	accessLog := flag.Bool("access-log", false, "log every HTTP request via slog with its trace id")
	shadowSample := flag.Float64("shadow-sample", 0, "fraction of estimate requests shadow-scored against a ground-truth oracle, 0..1 (0 disables)")
	shadowBudget := flag.Int("shadow-oracle-budget", 2000, "max vectors the shadow oracle scans (or samples) per ground-truth evaluation")
	workloadShift := flag.Float64("workload-shift", 0.25, "live-vs-training workload divergence above which retraining is advised (with -shadow-sample)")
	mutexFraction := flag.Int("mutex-profile-fraction", 0, "runtime.SetMutexProfileFraction sampling rate for /debug/pprof/mutex (with -debug-addr; 0 disables)")
	blockRate := flag.Int("block-profile-rate", 0, "runtime.SetBlockProfileRate nanoseconds threshold for /debug/pprof/block (with -debug-addr; 0 disables)")
	clusterSelf := flag.String("cluster-self", "", "this node's base URL as peers reach it, e.g. http://10.0.0.1:8080 (with -cluster-peers)")
	clusterPeers := flag.String("cluster-peers", "", "comma-separated base URLs of every cluster node including this one (empty disables clustering)")
	clusterReplicas := flag.Int("cluster-replicas", 2, "replicas per model (clamped to the cluster size)")
	clusterHeartbeat := flag.Duration("cluster-heartbeat", 250*time.Millisecond, "peer heartbeat interval")
	clusterFailover := flag.Duration("cluster-failover", 0, "leader silence before a follower takes over (0 = 6x the heartbeat)")
	clusterAck := flag.Int("cluster-ack", 1, "follower journal acknowledgements required before an update is acknowledged (0 = asynchronous replication)")
	clusterAckTimeout := flag.Duration("cluster-ack-timeout", 5*time.Second, "max wait for follower acknowledgements before answering 503")
	routerMode := flag.String("router", "", "workload routing for the virtual names \"default\"/\"auto\": auto, ensemble, or an estimator kind slug (empty disables)")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	flag.Var(&models, "model", "model to serve as name=path (repeatable); bare path serves as \"default\"")
	flag.Var(&data, "data", "CSV vector database attached to a -model for streaming updates, as name=path.csv (repeatable)")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	slog.SetDefault(slog.New(handler))

	dist, err := distance.Parse(*distName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selestd: %v\n", err)
		os.Exit(1)
	}
	opts := ingestOptions{
		queueDepth:     *updateQueue,
		coalesceMax:    *coalesce,
		retrainWorkers: *retrainWorkers,
		deltaU:         *deltaU,
		patience:       *patience,
		maxEpochs:      *maxEpochs,
		queries:        *updateQueries,
		dist:           dist,
		journalDir:     *journalDir,
		snapshotEvery:  *snapshotEvery,
		compactBytes:   *compactBytes,
		syncInterval:   *syncInterval,
	}
	oo := obsOptions{
		debugAddr:    *debugAddr,
		traceSlow:    *traceSlow,
		driftQError:  *driftQError,
		kernelTiming: *kernelTiming,
		accessLog:    *accessLog,

		shadowSample:  *shadowSample,
		shadowBudget:  *shadowBudget,
		workloadShift: *workloadShift,
		mutexFraction: *mutexFraction,
		blockRate:     *blockRate,
	}
	co := clusterOptions{
		self:       strings.TrimRight(strings.TrimSpace(*clusterSelf), "/"),
		peers:      parsePeers(*clusterPeers),
		replicas:   *clusterReplicas,
		heartbeat:  *clusterHeartbeat,
		failover:   *clusterFailover,
		ack:        *clusterAck,
		ackTimeout: *clusterAckTimeout,
	}
	cfg := serve.Config{
		Batcher: serve.BatcherConfig{MaxBatch: *maxBatch, FlushInterval: *flush, Lanes: *lanes},
		Cache:   serve.CacheConfig{Capacity: *cacheSize, Quantum: *quantum},
	}
	if err := validateFlags(cfg, opts, oo, co, *routerMode, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "selestd: %v\n", err)
		os.Exit(1)
	}
	if err := run(*addr, models, data, cfg, opts, oo, co, *routerMode, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "selestd: %v\n", err)
		os.Exit(1)
	}
}

// validateFlags rejects out-of-range flag values at startup with one
// clear error, instead of letting a bad value surface later as silent
// misbehavior (a negative sample rate never sampling, a zero queue
// rejecting every update).
func validateFlags(cfg serve.Config, opts ingestOptions, oo obsOptions, co clusterOptions, routerMode string, drain time.Duration) error {
	if oo.shadowSample < 0 || oo.shadowSample > 1 {
		return fmt.Errorf("-shadow-sample must be in [0,1], got %g", oo.shadowSample)
	}
	if routerMode != "" && !serve.ValidRouterMode(routerMode) {
		return fmt.Errorf("-router must be auto, ensemble, or an estimator kind slug, got %q", routerMode)
	}
	if oo.shadowBudget < 0 {
		return fmt.Errorf("-shadow-oracle-budget must be >= 0, got %d", oo.shadowBudget)
	}
	if oo.traceSlow < 0 {
		return fmt.Errorf("-trace-slow must be >= 0, got %s", oo.traceSlow)
	}
	if oo.driftQError < 0 {
		return fmt.Errorf("-drift-qerror must be >= 0, got %g", oo.driftQError)
	}
	if oo.workloadShift < 0 {
		return fmt.Errorf("-workload-shift must be >= 0, got %g", oo.workloadShift)
	}
	if cfg.Batcher.MaxBatch < 1 {
		return fmt.Errorf("-max-batch must be >= 1, got %d", cfg.Batcher.MaxBatch)
	}
	if cfg.Cache.Capacity < 0 {
		return fmt.Errorf("-cache must be >= 0, got %d", cfg.Cache.Capacity)
	}
	if opts.queueDepth < 1 {
		return fmt.Errorf("-update-queue must be >= 1, got %d", opts.queueDepth)
	}
	if opts.coalesceMax < 1 {
		return fmt.Errorf("-coalesce must be >= 1, got %d", opts.coalesceMax)
	}
	if opts.retrainWorkers < 1 {
		return fmt.Errorf("-retrain-workers must be >= 1, got %d", opts.retrainWorkers)
	}
	if opts.snapshotEvery < 1 {
		return fmt.Errorf("-snapshot-every must be >= 1, got %d", opts.snapshotEvery)
	}
	if opts.compactBytes < 0 {
		return fmt.Errorf("-journal-compact-bytes must be >= 0, got %d", opts.compactBytes)
	}
	if opts.syncInterval < 0 {
		return fmt.Errorf("-journal-sync-interval must be >= 0, got %s", opts.syncInterval)
	}
	if drain <= 0 {
		return fmt.Errorf("-drain must be > 0, got %s", drain)
	}
	if !co.enabled() {
		if co.self != "" {
			return fmt.Errorf("-cluster-self requires -cluster-peers")
		}
		return nil
	}
	if co.self == "" {
		return fmt.Errorf("-cluster-peers requires -cluster-self")
	}
	found := false
	for _, p := range co.peers {
		found = found || p == co.self
	}
	if !found {
		return fmt.Errorf("-cluster-self %q is not in -cluster-peers %v", co.self, co.peers)
	}
	if co.replicas < 1 {
		return fmt.Errorf("-cluster-replicas must be >= 1, got %d", co.replicas)
	}
	if co.heartbeat <= 0 {
		return fmt.Errorf("-cluster-heartbeat must be > 0, got %s", co.heartbeat)
	}
	if co.failover < 0 {
		return fmt.Errorf("-cluster-failover must be >= 0, got %s", co.failover)
	}
	if co.ack < 0 {
		return fmt.Errorf("-cluster-ack must be >= 0, got %d", co.ack)
	}
	if co.ackTimeout <= 0 {
		return fmt.Errorf("-cluster-ack-timeout must be > 0, got %s", co.ackTimeout)
	}
	if opts.journalDir == "" {
		return fmt.Errorf("-cluster-peers requires -journal-dir: replication streams the write-ahead log")
	}
	return nil
}

func run(addr string, models, data []string, cfg serve.Config, opts ingestOptions, oo obsOptions, co clusterOptions, routerMode string, drain time.Duration) error {
	// With clustering on, every node is configured identically (same
	// -model/-data specs, same peer list) and placement decides which
	// models this node actually loads and attaches; the full name list
	// still feeds the router so requests for remote models proxy out.
	var clusterModels []string
	hosted := func(string) bool { return true }
	if co.enabled() {
		seen := map[string]bool{}
		for _, spec := range models {
			name, _, ok := strings.Cut(spec, "=")
			if !ok {
				name = "default"
			}
			if !seen[name] {
				seen[name] = true
				clusterModels = append(clusterModels, name)
			}
		}
		hosted = func(name string) bool {
			for _, rep := range cluster.Placement(co.peers, co.replicas, name) {
				if rep == co.self {
					return true
				}
			}
			return false
		}
		kept := models[:0]
		for _, spec := range models {
			name, _, ok := strings.Cut(spec, "=")
			if !ok {
				name = "default"
			}
			if hosted(name) {
				kept = append(kept, spec)
			} else {
				slog.Info("model placed on other nodes; serving it by proxy", "model", name)
			}
		}
		models = kept
		keptData := data[:0]
		for _, spec := range data {
			name, _, ok := strings.Cut(spec, "=")
			if !ok {
				name = "default"
			}
			if hosted(name) {
				keptData = append(keptData, spec)
			}
		}
		data = keptData
	}

	srv := serve.NewServer(cfg)
	srv.SetTracer(obs.NewTracer(obs.TracerConfig{SlowThreshold: oo.traceSlow}))
	opts.drift = obs.NewDriftMonitor(obs.DriftConfig{Threshold: oo.driftQError})
	srv.SetDrift(opts.drift)
	infer.SetKernelTiming(oo.kernelTiming)
	if oo.accessLog {
		srv.SetAccessLog(slog.Default())
	}
	if oo.shadowSample > 0 {
		opts.workload = obs.NewWorkloadMonitor(obs.WorkloadConfig{Threshold: oo.workloadShift})
		opts.shadow = obs.NewShadow(obs.ShadowConfig{
			SampleRate: oo.shadowSample,
			Workload:   opts.workload,
		})
		opts.oracleBudget = oo.shadowBudget
		srv.SetShadow(opts.shadow)
		// Close stops the oracle workers after the ingest pipeline (whose
		// databases they read) has drained; deferred before attachIngest so
		// it runs after the pipeline's own deferred Close.
		defer opts.shadow.Close()
		slog.Info("shadow accuracy sampling enabled",
			"rate", oo.shadowSample, "oracle_budget", oo.shadowBudget, "workload_shift", oo.workloadShift)
	}
	// srv.Close() waits for in-flight batches, which is unbounded if a
	// handler is stuck; the drain-timeout path below skips it so -drain
	// really bounds shutdown.
	closeServer := true
	defer func() {
		if closeServer {
			srv.Close()
		}
	}()

	loaded := map[string]serve.Estimator{}
	for _, spec := range models {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			name, path = "default", spec
		}
		m, err := modelcodec.LoadFile(path)
		if err != nil {
			return fmt.Errorf("load -model %s: %w", spec, err)
		}
		if _, err := srv.Registry().Publish(name, m, path); err != nil {
			return err
		}
		loaded[name] = m
		slog.Info("model loaded", "name", name, "path", path,
			"kind", modelcodec.Kind(m), "estimator", m.Name(), "dim", m.Dim(), "t_max", m.TMax())
	}
	if len(models) == 0 {
		slog.Info("no -model given; load one with POST /v1/models/{name}")
	}
	if routerMode != "" {
		srv.SetRouter(serve.NewRouter(srv.Registry(), serve.RouterConfig{Mode: routerMode}))
		slog.Info("workload router enabled", "mode", routerMode, "virtual_names", "default, auto")
	}

	// Like srv.Close, draining the update journals (shadow retrains
	// included) is unbounded work; the drain-timeout path below skips it
	// so -drain really bounds shutdown even with a full update queue.
	drainPipeline := true
	pipe, err := attachIngest(srv, loaded, data, opts)
	if err != nil {
		return err
	}
	if pipe != nil {
		defer func() {
			if drainPipeline {
				pipe.Close()
			}
		}()
	}

	// Cluster mode: wrap the pipeline in a cluster node so updates go
	// through leadership + replication acks, and attach the router so
	// the server proxies requests for models placed elsewhere. Deferred
	// after the pipeline's Close, so the node's loops stop first.
	if co.enabled() {
		if pipe == nil {
			return fmt.Errorf("clustering requires at least one -data attachment: replication streams the update journal")
		}
		node, err := cluster.NewNode(cluster.Config{
			Self: co.self, Peers: co.peers, Replicas: co.replicas,
			Models: clusterModels, Pipe: pipe,
			Heartbeat: co.heartbeat, FailAfter: co.failover,
			AckFollowers: co.ack, AckTimeout: co.ackTimeout,
			Monitor: obs.NewClusterMonitor(), Logger: slog.Default(),
		})
		if err != nil {
			return err
		}
		srv.SetUpdater(node)
		srv.SetCluster(node)
		node.Start()
		defer node.Close()
		slog.Info("cluster enabled", "self", co.self, "peers", len(co.peers),
			"replicas", co.replicas, "hosted", node.Hosted(), "ack_followers", co.ack)
	}

	// The pprof surface lives on its own listener so profiling never
	// shares a port (or an operator firewall rule) with the public API.
	var ds *http.Server
	if oo.debugAddr != "" {
		// Contention profiling is opt-in and gated on the debug listener:
		// without a pprof surface the samples would accumulate unread.
		if oo.mutexFraction > 0 {
			runtime.SetMutexProfileFraction(oo.mutexFraction)
		}
		if oo.blockRate > 0 {
			runtime.SetBlockProfileRate(oo.blockRate)
		}
		dm := http.NewServeMux()
		dm.HandleFunc("/debug/pprof/", pprof.Index)
		dm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ds = &http.Server{Addr: oo.debugAddr, Handler: dm}
		go func() {
			slog.Info("debug listener (pprof) up", "addr", oo.debugAddr)
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				slog.Warn("debug listener failed", "addr", oo.debugAddr, "err", err)
			}
		}()
		defer ds.Close()
	}

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		slog.Info("selestd listening", "addr", addr)
		errc <- hs.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		slog.Info("draining", "signal", sig.String(), "timeout", drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// Handlers are still running; draining their batches — or the
			// update journals, whose shadow retrains can take minutes —
			// would block past the deadline the operator asked for.
			closeServer = false
			drainPipeline = false
			slog.Warn("drain timeout exceeded, exiting with requests in flight")
			return nil
		}
		return err
	}
	// Shutdown returned cleanly: handlers finished. Drain the update
	// journals now (accepted batches are applied before exit — Close is
	// idempotent, so the deferred call becomes a no-op); the deferred
	// srv.Close() then drains inference batches.
	if pipe != nil {
		pipe.Close()
	}
	slog.Info("bye")
	return nil
}

// attachIngest builds the update pipeline for every -data spec, pairing
// each CSV database with its already-loaded model and generating a
// labelled validation workload for the δ_U trigger. The pipeline
// degrades by estimator capability (retrain / refresh / static), so
// every model kind can attach. With -journal-dir, each Attach recovers
// the model's durable state first (snapshot + write-ahead-log replay)
// and the directory is scanned for journals whose models are not
// configured, which would otherwise never replay.
func attachIngest(srv *serve.Server, loaded map[string]serve.Estimator, data []string, opts ingestOptions) (*ingest.Pipeline, error) {
	if len(data) == 0 {
		if opts.journalDir != "" {
			warnOrphanJournals(opts.journalDir, nil)
		}
		return nil, nil
	}
	tc := selnet.DefaultTrainConfig()
	tc.AEPretrainEpochs = 0 // incremental retraining continues from current weights
	pipe := ingest.New(ingest.Config{
		Registry:       srv.Registry(),
		QueueDepth:     opts.queueDepth,
		CoalesceMax:    opts.coalesceMax,
		RetrainWorkers: opts.retrainWorkers,
		Train:          tc,
		Update:         selnet.UpdateConfig{DeltaU: opts.deltaU, Patience: opts.patience, MaxEpochs: opts.maxEpochs},
		Drift:          opts.drift,
		Shadow:         opts.shadow,
		Workload:       opts.workload,
		Oracle:         ingest.OracleConfig{Budget: opts.oracleBudget},
		Journal: ingest.JournalConfig{
			Dir:           opts.journalDir,
			SnapshotEvery: opts.snapshotEvery,
			CompactBytes:  opts.compactBytes,
			SyncInterval:  opts.syncInterval,
			OnRecover: func(model string, r ingest.Recovery) {
				slog.Info("journal recovered", "model", model, "snapshot_seq", r.SnapshotSeq,
					"model_restored", r.RestoredModel, "replayed", r.Replayed, "discarded_bytes", r.DiscardedBytes)
			},
		},
		OnCycle: func(model string, c ingest.Cycle) {
			if c.Err != nil {
				slog.Warn("ingest cycle failed", "model", model,
					"first_seq", c.FirstSeq, "last_seq", c.LastSeq, "err", c.Err)
				return
			}
			slog.Info("ingest cycle", "model", model,
				"first_seq", c.FirstSeq, "last_seq", c.LastSeq,
				"inserted", c.Inserted, "deleted", c.Deleted,
				"retrained", c.Result.Retrained, "epochs", c.Result.EpochsRun,
				"mae_before", c.Result.MAEBefore, "mae_after", c.Result.MAEAfter,
				"generation", c.Generation, "duration", c.Duration.Round(time.Millisecond))
		},
	})
	attached := map[string]bool{}
	for _, spec := range data {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			name, path = "default", spec
		}
		m, okM := loaded[name]
		if !okM {
			pipe.Close()
			return nil, fmt.Errorf("-data %s: no -model loaded under %q", spec, name)
		}
		db, err := vecdata.ReadCSVFile(path, opts.dist)
		if err != nil {
			pipe.Close()
			return nil, fmt.Errorf("load -data %s: %w", spec, err)
		}
		if db.Dim != m.Dim() {
			pipe.Close()
			return nil, fmt.Errorf("-data %s: database dim %d but model %q has dim %d", spec, db.Dim, name, m.Dim())
		}
		// The δ_U trigger needs labelled queries whose labels track the
		// evolving database; generate them from the data itself. (With a
		// journal, Attach relabels them against the recovered database.)
		rng := rand.New(rand.NewSource(1))
		wl := vecdata.GeometricWorkload(rng, db, opts.queries, 4)
		cut := len(wl.Queries) * 3 / 4
		if err := pipe.Attach(name, m, db, wl.Queries[:cut], wl.Queries[cut:]); err != nil {
			pipe.Close()
			return nil, err
		}
		attached[name] = true
		slog.Info("attached for streaming updates", "model", name, "vectors", db.Size(),
			"delta_u_queries", len(wl.Queries), "queue", opts.queueDepth, "durable", opts.journalDir != "")
	}
	if opts.journalDir != "" {
		warnOrphanJournals(opts.journalDir, attached)
	}
	srv.SetUpdater(pipe)
	return pipe, nil
}

// warnOrphanJournals logs journals present on disk whose models are not
// attached this boot: their acknowledged batches exist durably but will
// not replay until the model is configured again.
func warnOrphanJournals(dir string, attached map[string]bool) {
	infos, err := ingest.ScanJournalDir(dir)
	if err != nil {
		slog.Warn("journal scan failed", "dir", dir, "err", err)
		return
	}
	for _, info := range infos {
		if !attached[info.Model] {
			slog.Warn("orphan journal will not replay (-model/-data missing?)",
				"path", info.Path, "entries", info.Entries, "model", info.Model)
		}
	}
}
