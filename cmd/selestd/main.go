// Command selestd is the SelNet model-serving daemon: it loads trained
// .gob models (from 'selest train') and serves selectivity estimates
// over HTTP with batched inference, an LRU estimate cache, hot-swappable
// models, and — for models attached to a database via -data — streaming
// insert/delete ingestion with Sec. 5.4 shadow retraining.
//
//	selestd -addr :8080 -model default=model.gob -data default=vectors.csv
//
// API (JSON):
//
//	GET  /healthz                   liveness probe
//	GET  /stats                     server, cache, ingest, per-model counters
//	GET  /metrics                   Prometheus text exposition
//	GET  /v1/models                 list loaded models
//	POST /v1/models/{name}          load or hot-swap a model: {"path": "model.gob"}
//	POST /v1/models/{name}/update   {"insert": [[...]], "delete": [[...]]}
//	POST /v1/estimate               {"model": "default", "query": [...], "t": 0.2}
//	POST /v1/estimate/batch         {"model": "default", "queries": [[...], ...], "ts": [...]}
//
// Updates are journaled per model and answered 202 immediately (429
// under queue backpressure); a background worker coalesces pending
// batches, applies them to the model's private database copy, runs the
// δ_U accuracy check on a shadow clone, and hot-swaps the retrained
// shadow in — serving traffic never blocks on retraining.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops, open
// requests finish, the ingest journals drain (every accepted batch is
// applied), and in-flight inference batches drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"selnet/internal/distance"
	"selnet/internal/ingest"
	"selnet/internal/selnet"
	"selnet/internal/serve"
	"selnet/internal/vecdata"
)

// repeatedFlags collects repeated name=value arguments.
type repeatedFlags []string

func (m *repeatedFlags) String() string { return strings.Join(*m, ",") }

func (m *repeatedFlags) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// ingestOptions carries the -update-* and retrain flag values.
type ingestOptions struct {
	queueDepth     int
	coalesceMax    int
	retrainWorkers int
	deltaU         float64
	patience       int
	maxEpochs      int
	queries        int
	dist           distance.Func
}

func main() {
	var models, data repeatedFlags
	addr := flag.String("addr", ":8080", "listen address")
	maxBatch := flag.Int("max-batch", 32, "max requests fused into one inference batch")
	flush := flag.Duration("flush", 2*time.Millisecond, "max wait for a batch to fill before flushing")
	workers := flag.Int("workers", 2, "concurrent inference batches per model")
	cacheSize := flag.Int("cache", 4096, "LRU estimate cache capacity (0 disables)")
	quantum := flag.Float64("quantum", 1e-6, "cache key quantization step for query coordinates and thresholds")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	updateQueue := flag.Int("update-queue", 64, "pending update batches per model before 429 backpressure")
	coalesce := flag.Int("coalesce", 8, "max update batches fused into one retrain cycle")
	retrainWorkers := flag.Int("retrain-workers", 1, "concurrent shadow retrains across all models")
	deltaU := flag.Float64("delta-u", 1.0, "MAE-change threshold delta_U gating incremental retraining (Sec. 5.4)")
	patience := flag.Int("retrain-patience", 3, "non-improving epochs that stop incremental retraining")
	maxEpochs := flag.Int("retrain-epochs", 30, "max incremental epochs per retrain cycle")
	updateQueries := flag.Int("update-queries", 32, "query vectors in the generated delta_U validation workload")
	distName := flag.String("dist", "l2", "distance function for -data CSV databases: l2 or cosine")
	flag.Var(&models, "model", "model to serve as name=path (repeatable); bare path serves as \"default\"")
	flag.Var(&data, "data", "CSV vector database attached to a -model for streaming updates, as name=path.csv (repeatable)")
	flag.Parse()

	dist, err := distance.Parse(*distName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selestd: %v\n", err)
		os.Exit(1)
	}
	opts := ingestOptions{
		queueDepth:     *updateQueue,
		coalesceMax:    *coalesce,
		retrainWorkers: *retrainWorkers,
		deltaU:         *deltaU,
		patience:       *patience,
		maxEpochs:      *maxEpochs,
		queries:        *updateQueries,
		dist:           dist,
	}
	if err := run(*addr, models, data, serve.Config{
		Batcher: serve.BatcherConfig{MaxBatch: *maxBatch, FlushInterval: *flush, Workers: *workers},
		Cache:   serve.CacheConfig{Capacity: *cacheSize, Quantum: *quantum},
	}, opts, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "selestd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, models, data []string, cfg serve.Config, opts ingestOptions, drain time.Duration) error {
	srv := serve.NewServer(cfg)
	// srv.Close() waits for in-flight batches, which is unbounded if a
	// handler is stuck; the drain-timeout path below skips it so -drain
	// really bounds shutdown.
	closeServer := true
	defer func() {
		if closeServer {
			srv.Close()
		}
	}()

	loaded := map[string]*selnet.Net{}
	for _, spec := range models {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			name, path = "default", spec
		}
		net, err := selnet.LoadNetFile(path)
		if err != nil {
			return fmt.Errorf("load -model %s: %w", spec, err)
		}
		if _, err := srv.Registry().Publish(name, net, path); err != nil {
			return err
		}
		loaded[name] = net
		log.Printf("loaded model %q from %s (dim %d, t_max %.4f)", name, path, net.Dim(), net.TMax())
	}
	if len(models) == 0 {
		log.Printf("no -model given; load one with POST /v1/models/{name}")
	}

	// Like srv.Close, draining the update journals (shadow retrains
	// included) is unbounded work; the drain-timeout path below skips it
	// so -drain really bounds shutdown even with a full update queue.
	drainPipeline := true
	pipe, err := attachIngest(srv, loaded, data, opts)
	if err != nil {
		return err
	}
	if pipe != nil {
		defer func() {
			if drainPipeline {
				pipe.Close()
			}
		}()
	}

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("selestd listening on %s", addr)
		errc <- hs.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("received %v, draining (timeout %v)...", sig, drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// Handlers are still running; draining their batches — or the
			// update journals, whose shadow retrains can take minutes —
			// would block past the deadline the operator asked for.
			closeServer = false
			drainPipeline = false
			log.Printf("drain timeout exceeded, exiting with requests in flight")
			return nil
		}
		return err
	}
	// Shutdown returned cleanly: handlers finished. Drain the update
	// journals now (accepted batches are applied before exit — Close is
	// idempotent, so the deferred call becomes a no-op); the deferred
	// srv.Close() then drains inference batches.
	if pipe != nil {
		pipe.Close()
	}
	log.Printf("bye")
	return nil
}

// attachIngest builds the update pipeline for every -data spec, pairing
// each CSV database with its already-loaded model and generating a
// labelled validation workload for the δ_U trigger.
func attachIngest(srv *serve.Server, loaded map[string]*selnet.Net, data []string, opts ingestOptions) (*ingest.Pipeline, error) {
	if len(data) == 0 {
		return nil, nil
	}
	tc := selnet.DefaultTrainConfig()
	tc.AEPretrainEpochs = 0 // incremental retraining continues from current weights
	pipe := ingest.New(ingest.Config{
		Registry:       srv.Registry(),
		QueueDepth:     opts.queueDepth,
		CoalesceMax:    opts.coalesceMax,
		RetrainWorkers: opts.retrainWorkers,
		Train:          tc,
		Update:         selnet.UpdateConfig{DeltaU: opts.deltaU, Patience: opts.patience, MaxEpochs: opts.maxEpochs},
		OnCycle: func(model string, c ingest.Cycle) {
			if c.Err != nil {
				log.Printf("ingest %q: seq %d-%d failed: %v", model, c.FirstSeq, c.LastSeq, c.Err)
				return
			}
			log.Printf("ingest %q: seq %d-%d (+%d/-%d vecs) retrained=%v epochs=%d mae %.3f->%.3f gen=%d (%v)",
				model, c.FirstSeq, c.LastSeq, c.Inserted, c.Deleted,
				c.Result.Retrained, c.Result.EpochsRun, c.Result.MAEBefore, c.Result.MAEAfter,
				c.Generation, c.Duration.Round(time.Millisecond))
		},
	})
	for _, spec := range data {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			name, path = "default", spec
		}
		net, okM := loaded[name]
		if !okM {
			pipe.Close()
			return nil, fmt.Errorf("-data %s: no -model loaded under %q", spec, name)
		}
		db, err := vecdata.ReadCSVFile(path, opts.dist)
		if err != nil {
			pipe.Close()
			return nil, fmt.Errorf("load -data %s: %w", spec, err)
		}
		if db.Dim != net.Dim() {
			pipe.Close()
			return nil, fmt.Errorf("-data %s: database dim %d but model %q has dim %d", spec, db.Dim, name, net.Dim())
		}
		// The δ_U trigger needs labelled queries whose labels track the
		// evolving database; generate them from the data itself.
		rng := rand.New(rand.NewSource(1))
		wl := vecdata.GeometricWorkload(rng, db, opts.queries, 4)
		cut := len(wl.Queries) * 3 / 4
		if err := pipe.Attach(name, net, db, wl.Queries[:cut], wl.Queries[cut:]); err != nil {
			pipe.Close()
			return nil, err
		}
		log.Printf("attached %q for streaming updates (%d vectors, %d delta_U queries, queue %d)",
			name, db.Size(), len(wl.Queries), opts.queueDepth)
	}
	srv.SetUpdater(pipe)
	return pipe, nil
}
