// Command selestd is the SelNet model-serving daemon: it loads trained
// .gob models (from 'selest train') and serves selectivity estimates
// over HTTP with batched inference, an LRU estimate cache, hot-swappable
// models, and — for models attached to a database via -data — streaming
// insert/delete ingestion with Sec. 5.4 shadow retraining.
//
//	selestd -addr :8080 -model default=model.gob -data default=vectors.csv
//
// API (JSON):
//
//	GET  /healthz                   liveness probe
//	GET  /stats                     server, cache, ingest, per-model counters
//	GET  /metrics                   Prometheus text exposition
//	GET  /v1/models                 list loaded models
//	POST /v1/models/{name}          load or hot-swap a model: {"path": "model.gob"}
//	POST /v1/models/{name}/update   {"insert": [[...]], "delete": [[...]]}
//	POST /v1/estimate               {"model": "default", "query": [...], "t": 0.2}
//	POST /v1/estimate/batch         {"model": "default", "queries": [[...], ...], "ts": [...]}
//
// Updates are journaled per model and answered 202 immediately (429
// under queue backpressure); a background worker coalesces pending
// batches, applies them to the model's private database copy, runs the
// δ_U accuracy check on a shadow clone, and hot-swaps the retrained
// shadow in — serving traffic never blocks on retraining.
//
// With -journal-dir set, the update journal is crash-durable: every
// accepted batch is fsynced to a per-model write-ahead log before the
// 202, a background snapshotter persists each model's database and
// weights so the log stays bounded, and on boot the daemon recovers —
// snapshot load, corrupt-tail truncation, replay of the surviving
// records through the δ_U pipeline — so a SIGKILL loses nothing that
// was acknowledged.
//
// Models may be single (.gob from 'selest train') or partitioned; the
// loader detects the kind, and both serve estimates and attach for
// streaming updates.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops, open
// requests finish, the ingest journals drain (every accepted batch is
// applied), and in-flight inference batches drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"selnet/internal/distance"
	"selnet/internal/ingest"
	"selnet/internal/selnet"
	"selnet/internal/serve"
	"selnet/internal/vecdata"
)

// repeatedFlags collects repeated name=value arguments.
type repeatedFlags []string

func (m *repeatedFlags) String() string { return strings.Join(*m, ",") }

func (m *repeatedFlags) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// ingestOptions carries the -update-*, retrain, and journal flag values.
type ingestOptions struct {
	queueDepth     int
	coalesceMax    int
	retrainWorkers int
	deltaU         float64
	patience       int
	maxEpochs      int
	queries        int
	dist           distance.Func
	journalDir     string
	snapshotEvery  int
	compactBytes   int64
	syncInterval   time.Duration
}

func main() {
	var models, data repeatedFlags
	addr := flag.String("addr", ":8080", "listen address")
	maxBatch := flag.Int("max-batch", 32, "max requests fused into one inference batch")
	flush := flag.Duration("flush", 2*time.Millisecond, "max wait for a batch to fill before flushing")
	lanes := flag.Int("workers", 0, "coalescer lanes per model (independent batching shards; 0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 4096, "LRU estimate cache capacity (0 disables)")
	quantum := flag.Float64("quantum", 1e-6, "cache key quantization step for query coordinates and thresholds")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	updateQueue := flag.Int("update-queue", 64, "pending update batches per model before 429 backpressure")
	coalesce := flag.Int("coalesce", 8, "max update batches fused into one retrain cycle")
	retrainWorkers := flag.Int("retrain-workers", 1, "concurrent shadow retrains across all models")
	deltaU := flag.Float64("delta-u", 1.0, "MAE-change threshold delta_U gating incremental retraining (Sec. 5.4)")
	patience := flag.Int("retrain-patience", 3, "non-improving epochs that stop incremental retraining")
	maxEpochs := flag.Int("retrain-epochs", 30, "max incremental epochs per retrain cycle")
	updateQueries := flag.Int("update-queries", 32, "query vectors in the generated delta_U validation workload")
	distName := flag.String("dist", "l2", "distance function for -data CSV databases: l2 or cosine")
	journalDir := flag.String("journal-dir", "", "directory for the durable update journal (empty keeps it in memory)")
	snapshotEvery := flag.Int("snapshot-every", 64, "applied update batches between durable snapshots (with -journal-dir)")
	compactBytes := flag.Int64("journal-compact-bytes", 4<<20, "WAL size forcing a snapshot+compaction (with -journal-dir)")
	syncInterval := flag.Duration("journal-sync-interval", 0, "tick-based WAL fsync window: batch records per fsync at the cost of up to this much added ack latency (0 = fsync per group commit)")
	flag.Var(&models, "model", "model to serve as name=path (repeatable); bare path serves as \"default\"")
	flag.Var(&data, "data", "CSV vector database attached to a -model for streaming updates, as name=path.csv (repeatable)")
	flag.Parse()

	dist, err := distance.Parse(*distName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selestd: %v\n", err)
		os.Exit(1)
	}
	opts := ingestOptions{
		queueDepth:     *updateQueue,
		coalesceMax:    *coalesce,
		retrainWorkers: *retrainWorkers,
		deltaU:         *deltaU,
		patience:       *patience,
		maxEpochs:      *maxEpochs,
		queries:        *updateQueries,
		dist:           dist,
		journalDir:     *journalDir,
		snapshotEvery:  *snapshotEvery,
		compactBytes:   *compactBytes,
		syncInterval:   *syncInterval,
	}
	if err := run(*addr, models, data, serve.Config{
		Batcher: serve.BatcherConfig{MaxBatch: *maxBatch, FlushInterval: *flush, Lanes: *lanes},
		Cache:   serve.CacheConfig{Capacity: *cacheSize, Quantum: *quantum},
	}, opts, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "selestd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, models, data []string, cfg serve.Config, opts ingestOptions, drain time.Duration) error {
	srv := serve.NewServer(cfg)
	// srv.Close() waits for in-flight batches, which is unbounded if a
	// handler is stuck; the drain-timeout path below skips it so -drain
	// really bounds shutdown.
	closeServer := true
	defer func() {
		if closeServer {
			srv.Close()
		}
	}()

	loaded := map[string]selnet.Model{}
	for _, spec := range models {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			name, path = "default", spec
		}
		m, err := selnet.LoadModelFile(path)
		if err != nil {
			return fmt.Errorf("load -model %s: %w", spec, err)
		}
		if _, err := srv.Registry().Publish(name, m, path); err != nil {
			return err
		}
		loaded[name] = m
		log.Printf("loaded %T model %q from %s (dim %d, t_max %.4f)", m, name, path, m.Dim(), m.TMax())
	}
	if len(models) == 0 {
		log.Printf("no -model given; load one with POST /v1/models/{name}")
	}

	// Like srv.Close, draining the update journals (shadow retrains
	// included) is unbounded work; the drain-timeout path below skips it
	// so -drain really bounds shutdown even with a full update queue.
	drainPipeline := true
	pipe, err := attachIngest(srv, loaded, data, opts)
	if err != nil {
		return err
	}
	if pipe != nil {
		defer func() {
			if drainPipeline {
				pipe.Close()
			}
		}()
	}

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("selestd listening on %s", addr)
		errc <- hs.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("received %v, draining (timeout %v)...", sig, drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// Handlers are still running; draining their batches — or the
			// update journals, whose shadow retrains can take minutes —
			// would block past the deadline the operator asked for.
			closeServer = false
			drainPipeline = false
			log.Printf("drain timeout exceeded, exiting with requests in flight")
			return nil
		}
		return err
	}
	// Shutdown returned cleanly: handlers finished. Drain the update
	// journals now (accepted batches are applied before exit — Close is
	// idempotent, so the deferred call becomes a no-op); the deferred
	// srv.Close() then drains inference batches.
	if pipe != nil {
		pipe.Close()
	}
	log.Printf("bye")
	return nil
}

// attachIngest builds the update pipeline for every -data spec, pairing
// each CSV database with its already-loaded model and generating a
// labelled validation workload for the δ_U trigger. With -journal-dir,
// each Attach recovers the model's durable state first (snapshot +
// write-ahead-log replay) and the directory is scanned for journals
// whose models are not configured, which would otherwise never replay.
func attachIngest(srv *serve.Server, loaded map[string]selnet.Model, data []string, opts ingestOptions) (*ingest.Pipeline, error) {
	if len(data) == 0 {
		if opts.journalDir != "" {
			warnOrphanJournals(opts.journalDir, nil)
		}
		return nil, nil
	}
	tc := selnet.DefaultTrainConfig()
	tc.AEPretrainEpochs = 0 // incremental retraining continues from current weights
	pipe := ingest.New(ingest.Config{
		Registry:       srv.Registry(),
		QueueDepth:     opts.queueDepth,
		CoalesceMax:    opts.coalesceMax,
		RetrainWorkers: opts.retrainWorkers,
		Train:          tc,
		Update:         selnet.UpdateConfig{DeltaU: opts.deltaU, Patience: opts.patience, MaxEpochs: opts.maxEpochs},
		Journal: ingest.JournalConfig{
			Dir:           opts.journalDir,
			SnapshotEvery: opts.snapshotEvery,
			CompactBytes:  opts.compactBytes,
			SyncInterval:  opts.syncInterval,
			OnRecover: func(model string, r ingest.Recovery) {
				log.Printf("journal %q: recovered snapshot seq %d (model restored=%v), replaying %d entries (%d corrupt tail bytes discarded)",
					model, r.SnapshotSeq, r.RestoredModel, r.Replayed, r.DiscardedBytes)
			},
		},
		OnCycle: func(model string, c ingest.Cycle) {
			if c.Err != nil {
				log.Printf("ingest %q: seq %d-%d failed: %v", model, c.FirstSeq, c.LastSeq, c.Err)
				return
			}
			log.Printf("ingest %q: seq %d-%d (+%d/-%d vecs) retrained=%v epochs=%d mae %.3f->%.3f gen=%d (%v)",
				model, c.FirstSeq, c.LastSeq, c.Inserted, c.Deleted,
				c.Result.Retrained, c.Result.EpochsRun, c.Result.MAEBefore, c.Result.MAEAfter,
				c.Generation, c.Duration.Round(time.Millisecond))
		},
	})
	attached := map[string]bool{}
	for _, spec := range data {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			name, path = "default", spec
		}
		m, okM := loaded[name]
		if !okM {
			pipe.Close()
			return nil, fmt.Errorf("-data %s: no -model loaded under %q", spec, name)
		}
		db, err := vecdata.ReadCSVFile(path, opts.dist)
		if err != nil {
			pipe.Close()
			return nil, fmt.Errorf("load -data %s: %w", spec, err)
		}
		if db.Dim != m.Dim() {
			pipe.Close()
			return nil, fmt.Errorf("-data %s: database dim %d but model %q has dim %d", spec, db.Dim, name, m.Dim())
		}
		// The δ_U trigger needs labelled queries whose labels track the
		// evolving database; generate them from the data itself. (With a
		// journal, Attach relabels them against the recovered database.)
		rng := rand.New(rand.NewSource(1))
		wl := vecdata.GeometricWorkload(rng, db, opts.queries, 4)
		cut := len(wl.Queries) * 3 / 4
		if err := pipe.Attach(name, m, db, wl.Queries[:cut], wl.Queries[cut:]); err != nil {
			pipe.Close()
			return nil, err
		}
		attached[name] = true
		log.Printf("attached %q for streaming updates (%d vectors, %d delta_U queries, queue %d, durable=%v)",
			name, db.Size(), len(wl.Queries), opts.queueDepth, opts.journalDir != "")
	}
	if opts.journalDir != "" {
		warnOrphanJournals(opts.journalDir, attached)
	}
	srv.SetUpdater(pipe)
	return pipe, nil
}

// warnOrphanJournals logs journals present on disk whose models are not
// attached this boot: their acknowledged batches exist durably but will
// not replay until the model is configured again.
func warnOrphanJournals(dir string, attached map[string]bool) {
	infos, err := ingest.ScanJournalDir(dir)
	if err != nil {
		log.Printf("journal scan %s: %v", dir, err)
		return
	}
	for _, info := range infos {
		if !attached[info.Model] {
			log.Printf("journal %s holds %d entries for model %q, which is not attached (-model/-data missing?); they will not replay",
				info.Path, info.Entries, info.Model)
		}
	}
}
