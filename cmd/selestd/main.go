// Command selestd is the SelNet model-serving daemon: it loads trained
// .gob models (from 'selest train') and serves selectivity estimates
// over HTTP with batched inference, an LRU estimate cache, and
// hot-swappable models.
//
//	selestd -addr :8080 -model default=model.gob -model faces=faces.gob
//
// API (JSON):
//
//	GET  /healthz                liveness probe
//	GET  /stats                  server, cache, and per-model counters
//	GET  /v1/models              list loaded models
//	POST /v1/models/{name}       load or hot-swap a model: {"path": "model.gob"}
//	POST /v1/estimate            {"model": "default", "query": [...], "t": 0.2}
//	POST /v1/estimate/batch      {"model": "default", "queries": [[...], ...], "ts": [...]}
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops, open
// requests finish, and in-flight inference batches drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"selnet/internal/selnet"
	"selnet/internal/serve"
)

// modelFlags collects repeated -model name=path arguments.
type modelFlags []string

func (m *modelFlags) String() string { return strings.Join(*m, ",") }

func (m *modelFlags) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var models modelFlags
	addr := flag.String("addr", ":8080", "listen address")
	maxBatch := flag.Int("max-batch", 32, "max requests fused into one inference batch")
	flush := flag.Duration("flush", 2*time.Millisecond, "max wait for a batch to fill before flushing")
	workers := flag.Int("workers", 2, "concurrent inference batches per model")
	cacheSize := flag.Int("cache", 4096, "LRU estimate cache capacity (0 disables)")
	quantum := flag.Float64("quantum", 1e-6, "cache key quantization step for query coordinates and thresholds")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	flag.Var(&models, "model", "model to serve as name=path (repeatable); bare path serves as \"default\"")
	flag.Parse()

	if err := run(*addr, models, serve.Config{
		Batcher: serve.BatcherConfig{MaxBatch: *maxBatch, FlushInterval: *flush, Workers: *workers},
		Cache:   serve.CacheConfig{Capacity: *cacheSize, Quantum: *quantum},
	}, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "selestd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, models []string, cfg serve.Config, drain time.Duration) error {
	srv := serve.NewServer(cfg)
	// srv.Close() waits for in-flight batches, which is unbounded if a
	// handler is stuck; the drain-timeout path below skips it so -drain
	// really bounds shutdown.
	closeServer := true
	defer func() {
		if closeServer {
			srv.Close()
		}
	}()

	for _, spec := range models {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			name, path = "default", spec
		}
		net, err := selnet.LoadNetFile(path)
		if err != nil {
			return fmt.Errorf("load -model %s: %w", spec, err)
		}
		if _, err := srv.Registry().Publish(name, net, path); err != nil {
			return err
		}
		log.Printf("loaded model %q from %s (dim %d, t_max %.4f)", name, path, net.Dim(), net.TMax())
	}
	if len(models) == 0 {
		log.Printf("no -model given; load one with POST /v1/models/{name}")
	}

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("selestd listening on %s", addr)
		errc <- hs.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("received %v, draining (timeout %v)...", sig, drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// Handlers are still running; draining their batches would
			// block past the deadline the operator asked for.
			closeServer = false
			log.Printf("drain timeout exceeded, exiting with requests in flight")
			return nil
		}
		return err
	}
	// Shutdown returned cleanly: handlers finished, so the deferred
	// srv.Close() only has empty batch queues to drain.
	log.Printf("bye")
	return nil
}
