package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"selnet/internal/selnet"
	"selnet/internal/vecdata"
)

// TestClusterFailover is the distributed acceptance test, run against
// real processes: three selestd nodes form a cluster, updates are
// ingested through the leader (and proxied through a follower), the
// leader is SIGKILLed, and the test asserts that the most caught-up
// follower is promoted, that no acknowledged batch is lost, and that
// reads keep serving throughout. The CI `cluster` job runs exactly this.
func TestClusterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives three real daemons")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "selestd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// One trained model + CSV database shared by every node (each keeps
	// its own journal directory, as separate machines would).
	rng := rand.New(rand.NewSource(71))
	db := vecdata.SyntheticFace(rng, 300, 4)
	wl := vecdata.GeometricWorkload(rng, db, 10, 4)
	mcfg := selnet.Config{
		L: 4, EmbedDim: 4,
		AEHidden: []int{8}, AELatent: 4,
		TauHidden: []int{8}, MHidden: []int{8},
		TMax: wl.TMax, Lambda: 0.1, QueryDependentTau: true, NormEps: 1e-6,
	}
	m := selnet.NewNet(rng, db.Dim, mcfg)
	tc := selnet.TrainConfig{Epochs: 1, Batch: 32, LR: 5e-3, HuberDelta: 1.345, LogEps: 1e-3, Seed: 1}
	cut := len(wl.Queries) * 3 / 4
	m.Fit(tc, db, wl.Queries[:cut], wl.Queries[cut:])
	modelPath := filepath.Join(dir, "model.gob")
	if err := m.SaveFile(modelPath); err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "data.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := vecdata.WriteCSV(f, db); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	const n = 3
	addrs := make([]string, n)
	urls := make([]string, n)
	for i := range addrs {
		addrs[i] = freeAddr(t)
		urls[i] = "http://" + addrs[i]
	}
	peers := strings.Join(urls, ",")

	daemons := make(map[string]*exec.Cmd, n) // base URL -> process
	for i := 0; i < n; i++ {
		args := []string{
			"-addr", addrs[i],
			"-model", "m=" + modelPath,
			"-data", "m=" + csvPath,
			"-journal-dir", filepath.Join(dir, fmt.Sprintf("journal-%d", i)),
			"-cluster-self", urls[i],
			"-cluster-peers", peers,
			"-cluster-replicas", "3",
			"-cluster-heartbeat", "50ms",
			"-cluster-failover", "400ms",
			"-cluster-ack", "1",
			"-cluster-ack-timeout", "10s",
			// Absorb every update with cheap cycles so replication, not
			// retraining, dominates the clock.
			"-delta-u", "1e18",
			"-retrain-epochs", "1",
			"-update-queries", "8",
			"-snapshot-every", "100000",
		}
		daemons[urls[i]] = startDaemon(t, bin, args, urls[i])
	}
	t.Cleanup(func() {
		for _, d := range daemons {
			d.Process.Signal(syscall.SIGTERM)
		}
		for _, d := range daemons {
			d.Wait()
		}
	})

	client := &http.Client{Timeout: 5 * time.Second}

	// The cluster elects a leader for the model.
	var leaderURL string
	var leaderTerm uint64
	waitForCluster(t, 15*time.Second, "initial leader", func() bool {
		sm, err := getClusterMap(client, urls[0])
		if err != nil || len(sm.Models) != 1 {
			return false
		}
		leaderURL, leaderTerm = sm.Models[0].Leader, sm.Models[0].Term
		return leaderURL != ""
	})
	if _, ok := daemons[leaderURL]; !ok {
		t.Fatalf("shard map names unknown leader %q", leaderURL)
	}

	// Acknowledged ingest through the leader. Each 202 means a follower
	// journaled the batch too (-cluster-ack 1).
	var lastSeq uint64
	for i := 0; i < 10; i++ {
		ins := [][]float64{{float64(i), 0.1, 0.2, 0.3}}
		seq, ok := postUpdate(t, client, leaderURL, ins)
		if !ok {
			i--
			time.Sleep(20 * time.Millisecond)
			continue
		}
		lastSeq = seq
	}
	if lastSeq == 0 {
		t.Fatal("no batch was acknowledged")
	}

	// A write through a follower is proxied to the leader: same journal,
	// continuing sequence, and the trace ID survives the hop.
	var followerURL string
	for url := range daemons {
		if url != leaderURL {
			followerURL = url
			break
		}
	}
	body, _ := json.Marshal(map[string]any{"insert": [][]float64{{99, 0.1, 0.2, 0.3}}})
	resp, err := client.Post(followerURL+"/v1/models/m/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	proxied, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("proxied update status %d: %s", resp.StatusCode, proxied)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("proxied update response lost its trace id")
	}
	var ack struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.Unmarshal(proxied, &ack); err != nil || ack.Seq != lastSeq+1 {
		t.Fatalf("proxied update got seq %d (%v), want %d", ack.Seq, err, lastSeq+1)
	}
	lastSeq = ack.Seq

	// Reads serve from every node.
	for url := range daemons {
		assertEstimates(t, client, url, db.Vecs[0], wl.TMax/2)
	}

	// Followers export replication lag; every node exports its role.
	waitForCluster(t, 10*time.Second, "replication metrics", func() bool {
		metrics := getBody(t, client, followerURL+"/metrics")
		return strings.Contains(metrics, "selestd_replication_lag{") &&
			strings.Contains(metrics, `selestd_cluster_is_leader{model="m"} 0`)
	})

	// /stats carries the cluster section.
	stats := getBody(t, client, leaderURL+"/stats")
	if !strings.Contains(stats, `"cluster"`) || !strings.Contains(stats, `"leader":true`) {
		t.Fatalf("leader /stats lacks cluster section: %s", stats)
	}

	// Kill the leader. No drain: acknowledged batches must already be
	// durable on a follower.
	daemons[leaderURL].Process.Kill()
	daemons[leaderURL].Wait()
	delete(daemons, leaderURL)

	// A survivor takes over with a higher term.
	var newLeader string
	waitForCluster(t, 15*time.Second, "failover", func() bool {
		for url := range daemons {
			sm, err := getClusterMap(client, url)
			if err != nil || len(sm.Models) != 1 {
				continue
			}
			lead := sm.Models[0].Leader
			if _, alive := daemons[lead]; alive && sm.Models[0].Term > leaderTerm {
				newLeader = lead
				return true
			}
		}
		return false
	})

	// Zero acknowledged loss: the new leader's journal holds every acked
	// sequence, and replay applies them all.
	waitForCluster(t, 30*time.Second, "acked batches applied on new leader", func() bool {
		st := getStats(t, client, newLeader)
		return st.NextSeq >= lastSeq && st.AppliedSeq >= lastSeq
	})

	// Reads keep serving on the survivors, and writes flow again.
	for url := range daemons {
		assertEstimates(t, client, url, db.Vecs[0], wl.TMax/2)
	}
	var postSeq uint64
	waitForCluster(t, 15*time.Second, "post-failover write", func() bool {
		seq, ok := postUpdate(t, client, newLeader, [][]float64{{7, 7, 7, 7}})
		postSeq = seq
		return ok && seq > lastSeq
	})
	if postSeq <= lastSeq {
		t.Fatalf("post-failover seq %d did not advance past %d", postSeq, lastSeq)
	}
}

type clusterMapModel struct {
	Model    string   `json:"model"`
	Replicas []string `json:"replicas"`
	Leader   string   `json:"leader"`
	Term     uint64   `json:"term"`
}

type clusterMap struct {
	Self   string            `json:"self"`
	Models []clusterMapModel `json:"models"`
}

func getClusterMap(client *http.Client, base string) (clusterMap, error) {
	var sm clusterMap
	resp, err := client.Get(base + "/v1/cluster")
	if err != nil {
		return sm, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sm, fmt.Errorf("status %d", resp.StatusCode)
	}
	return sm, json.NewDecoder(resp.Body).Decode(&sm)
}

func getBody(t *testing.T, client *http.Client, url string) string {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func assertEstimates(t *testing.T, client *http.Client, base string, q []float64, threshold float64) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"model": "m", "query": q, "t": threshold})
	resp, err := client.Post(base+"/v1/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("estimate on %s: %v", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("estimate on %s: status %d: %s", base, resp.StatusCode, b)
	}
}

func waitForCluster(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
