package main

import (
	"strings"
	"testing"
	"time"

	"selnet/internal/serve"
)

// goodFlags is a baseline that must validate; each test case breaks one
// knob and names the flag the error must mention.
func goodFlags() (serve.Config, ingestOptions, obsOptions, clusterOptions, time.Duration) {
	cfg := serve.Config{
		Batcher: serve.BatcherConfig{MaxBatch: 32},
		Cache:   serve.CacheConfig{Capacity: 4096},
	}
	opts := ingestOptions{
		queueDepth: 64, coalesceMax: 8, retrainWorkers: 1,
		snapshotEvery: 64, compactBytes: 4 << 20,
	}
	oo := obsOptions{traceSlow: 100 * time.Millisecond, shadowBudget: 2000, workloadShift: 0.25}
	return cfg, opts, oo, clusterOptions{}, 10 * time.Second
}

func TestValidateFlagsAcceptsDefaults(t *testing.T) {
	cfg, opts, oo, co, drain := goodFlags()
	if err := validateFlags(cfg, opts, oo, co, "", drain); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	// Boundary sample rates are legal.
	for _, rate := range []float64{0, 1} {
		oo.shadowSample = rate
		if err := validateFlags(cfg, opts, oo, co, "", drain); err != nil {
			t.Fatalf("shadow-sample %g rejected: %v", rate, err)
		}
	}
	// Every routing policy the serve layer accepts is a legal -router.
	for _, mode := range []string{"auto", "ensemble", "selnet", "kde", "lsh"} {
		if err := validateFlags(cfg, opts, oo, co, mode, drain); err != nil {
			t.Fatalf("-router %s rejected: %v", mode, err)
		}
	}
}

func TestValidateFlagsRejectsOutOfRange(t *testing.T) {
	cases := []struct {
		name string
		flag string // substring the error must carry
		mut  func(*serve.Config, *ingestOptions, *obsOptions, *clusterOptions, *time.Duration)
	}{
		{"shadow sample negative", "-shadow-sample",
			func(_ *serve.Config, _ *ingestOptions, oo *obsOptions, _ *clusterOptions, _ *time.Duration) {
				oo.shadowSample = -0.1
			}},
		{"shadow sample above one", "-shadow-sample",
			func(_ *serve.Config, _ *ingestOptions, oo *obsOptions, _ *clusterOptions, _ *time.Duration) {
				oo.shadowSample = 1.5
			}},
		{"oracle budget negative", "-shadow-oracle-budget",
			func(_ *serve.Config, _ *ingestOptions, oo *obsOptions, _ *clusterOptions, _ *time.Duration) {
				oo.shadowBudget = -1
			}},
		{"trace slow negative", "-trace-slow",
			func(_ *serve.Config, _ *ingestOptions, oo *obsOptions, _ *clusterOptions, _ *time.Duration) {
				oo.traceSlow = -time.Second
			}},
		{"coalesce zero", "-coalesce",
			func(_ *serve.Config, opts *ingestOptions, _ *obsOptions, _ *clusterOptions, _ *time.Duration) {
				opts.coalesceMax = 0
			}},
		{"update queue zero", "-update-queue",
			func(_ *serve.Config, opts *ingestOptions, _ *obsOptions, _ *clusterOptions, _ *time.Duration) {
				opts.queueDepth = 0
			}},
		{"compact bytes negative", "-journal-compact-bytes",
			func(_ *serve.Config, opts *ingestOptions, _ *obsOptions, _ *clusterOptions, _ *time.Duration) {
				opts.compactBytes = -1
			}},
		{"max batch zero", "-max-batch",
			func(cfg *serve.Config, _ *ingestOptions, _ *obsOptions, _ *clusterOptions, _ *time.Duration) {
				cfg.Batcher.MaxBatch = 0
			}},
		{"cache negative", "-cache",
			func(cfg *serve.Config, _ *ingestOptions, _ *obsOptions, _ *clusterOptions, _ *time.Duration) {
				cfg.Cache.Capacity = -1
			}},
		{"drain zero", "-drain",
			func(_ *serve.Config, _ *ingestOptions, _ *obsOptions, _ *clusterOptions, d *time.Duration) {
				*d = 0
			}},
		{"cluster self without peers", "-cluster-self",
			func(_ *serve.Config, _ *ingestOptions, _ *obsOptions, co *clusterOptions, _ *time.Duration) {
				co.self = "http://a:1"
			}},
		{"cluster peers without self", "-cluster-self",
			func(_ *serve.Config, _ *ingestOptions, _ *obsOptions, co *clusterOptions, _ *time.Duration) {
				co.peers = []string{"http://a:1"}
				co.replicas, co.heartbeat, co.ack, co.ackTimeout = 2, time.Second, 1, time.Second
			}},
		{"cluster self outside peers", "-cluster-self",
			func(_ *serve.Config, _ *ingestOptions, _ *obsOptions, co *clusterOptions, _ *time.Duration) {
				co.self = "http://z:1"
				co.peers = []string{"http://a:1", "http://b:1"}
				co.replicas, co.heartbeat, co.ack, co.ackTimeout = 2, time.Second, 1, time.Second
			}},
		{"cluster without journal", "-journal-dir",
			func(_ *serve.Config, opts *ingestOptions, _ *obsOptions, co *clusterOptions, _ *time.Duration) {
				co.self = "http://a:1"
				co.peers = []string{"http://a:1", "http://b:1"}
				co.replicas, co.heartbeat, co.ack, co.ackTimeout = 2, time.Second, 1, time.Second
				opts.journalDir = ""
			}},
		{"cluster ack negative", "-cluster-ack",
			func(_ *serve.Config, opts *ingestOptions, _ *obsOptions, co *clusterOptions, _ *time.Duration) {
				co.self = "http://a:1"
				co.peers = []string{"http://a:1", "http://b:1"}
				co.replicas, co.heartbeat, co.ack, co.ackTimeout = 2, time.Second, -1, time.Second
				opts.journalDir = "j"
			}},
	}
	for _, tc := range cases {
		cfg, opts, oo, co, drain := goodFlags()
		tc.mut(&cfg, &opts, &oo, &co, &drain)
		err := validateFlags(cfg, opts, oo, co, "", drain)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.flag) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.flag)
		}
	}
	cfg, opts, oo, co, drain := goodFlags()
	err := validateFlags(cfg, opts, oo, co, "bogus-kind", drain)
	if err == nil || !strings.Contains(err.Error(), "-router") {
		t.Errorf("bogus -router mode: err = %v, want one naming -router", err)
	}
}

func TestParsePeers(t *testing.T) {
	got := parsePeers(" http://a:1/, http://b:2 ,,http://c:3")
	want := []string{"http://a:1", "http://b:2", "http://c:3"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if parsePeers("") != nil {
		t.Fatal("empty list should parse to nil")
	}
}
