package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"selnet/internal/partition"
	"selnet/internal/selnet"
	"selnet/internal/vecdata"
)

// accuracyDebugResponse mirrors the /debug/accuracy wire shape.
type accuracyDebugResponse struct {
	Sampler struct {
		SampleRate float64           `json:"sample_rate"`
		Sampled    uint64            `json:"sampled"`
		Dropped    uint64            `json:"dropped"`
		Oracles    map[string]uint64 `json:"oracle_methods"`
	} `json:"sampler"`
	Models map[string]struct {
		Samples uint64  `json:"samples"`
		P50     float64 `json:"qerror_p50"`
		P95     float64 `json:"qerror_p95"`
		Buckets map[string]struct {
			Count uint64 `json:"count"`
		} `json:"buckets"`
		Partitions map[string]struct {
			Count uint64 `json:"count"`
		} `json:"partitions"`
		Worst []struct {
			TraceID string  `json:"trace_id"`
			QError  float64 `json:"qerror"`
			Oracle  string  `json:"oracle"`
		} `json:"worst"`
	} `json:"models"`
	Workload map[string]struct {
		LiveSamples uint64  `json:"live_samples"`
		Divergence  float64 `json:"divergence"`
		Exceeded    uint64  `json:"exceeded"`
	} `json:"workload"`
}

// TestAccuracySmoke is the end-to-end acceptance test for the
// live-traffic accuracy layer, run against the real binary: selestd is
// started with shadow sampling on a partitioned model attached to its
// database, live estimate traffic is driven (deliberately shifted away
// from the training workload), and the test asserts that
// /debug/accuracy reports per-model q-error quantiles with threshold-
// bucket and partition breakdowns plus a worst-N list carrying trace
// IDs, that the new shadow/workload Prometheus families are exposed,
// and that /stats surfaces the workload-shift retraining advice. The
// CI `accuracy-smoke` job runs this.
func TestAccuracySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives the real daemon")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "selestd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// A partitioned model gives the sampler real region attribution.
	rng := rand.New(rand.NewSource(83))
	db := vecdata.SyntheticFace(rng, 300, 4)
	wl := vecdata.GeometricWorkload(rng, db, 10, 4)
	pcfg := selnet.PartitionedConfig{
		Model: selnet.Config{
			L: 3, EmbedDim: 4, AEHidden: []int{8}, AELatent: 4,
			TauHidden: []int{8}, MHidden: []int{8},
			TMax: wl.TMax, Lambda: 0.1, QueryDependentTau: true, NormEps: 1e-6,
		},
		K: 2, Ratio: 0.2, Method: partition.CoverTree, Beta: 0.1, PretrainEpochs: 0,
	}
	m := selnet.NewPartitioned(rng, db, pcfg)
	tc := selnet.TrainConfig{Epochs: 1, Batch: 32, LR: 5e-3, HuberDelta: 1.345, LogEps: 1e-3, Seed: 1}
	cut := len(wl.Queries) * 3 / 4
	m.Fit(tc, db, wl.Queries[:cut], wl.Queries[cut:])
	modelPath := filepath.Join(dir, "model.gob")
	if err := selnet.SaveModelFile(modelPath, m); err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "data.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := vecdata.WriteCSV(f, db); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	addr := freeAddr(t)
	base := "http://" + addr
	args := []string{
		"-addr", addr,
		"-model", "m=" + modelPath,
		"-data", "m=" + csvPath,
		"-dist", "cos",
		// The acceptance rate: 1 in 10 requests shadow-scored. The
		// workload detector is set sensitive so the shifted traffic
		// below trips it, and -cache 0 keeps every request on the full
		// inference path.
		"-shadow-sample", "0.1",
		"-shadow-oracle-budget", "2000",
		"-workload-shift", "0.05",
		"-cache", "0",
		"-update-queries", "8",
	}
	daemon := startDaemon(t, bin, args, base)
	defer func() {
		daemon.Process.Signal(syscall.SIGTERM)
		daemon.Wait()
	}()
	client := &http.Client{Timeout: 10 * time.Second}

	// ~1000 live queries in batches: database points jittered far from
	// the training workload (a real shift), with thresholds spread
	// across the relative bands so multiple buckets populate.
	qrng := rand.New(rand.NewSource(84))
	bands := []float64{0.05, 0.2, 0.4, 0.8}
	for batch := 0; batch < 10; batch++ {
		queries := make([][]float64, 100)
		ts := make([]float64, 100)
		for i := range queries {
			base := db.Vecs[qrng.Intn(db.Size())]
			q := make([]float64, len(base))
			for j := range q {
				q[j] = base[j] + 0.5 + qrng.NormFloat64()*0.3 // shifted
			}
			queries[i] = q
			ts[i] = bands[i%len(bands)] * wl.TMax
		}
		body, _ := json.Marshal(map[string]any{"model": "m", "queries": queries, "ts": ts})
		resp, err := client.Post(base+"/v1/estimate/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: status %d", batch, resp.StatusCode)
		}
	}

	// The oracle workers score asynchronously; poll until a healthy
	// number of samples landed (expect ~100 of 1000 at rate 0.1).
	var acc accuracyDebugResponse
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := client.Get(base + "/debug/accuracy")
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("/debug/accuracy Content-Type %q", ct)
		}
		acc = accuracyDebugResponse{}
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st, ok := acc.Models["m"]; ok && st.Samples >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shadow scoring never populated: %+v", acc)
		}
		time.Sleep(100 * time.Millisecond)
	}

	if acc.Sampler.SampleRate != 0.1 {
		t.Fatalf("sample_rate = %v", acc.Sampler.SampleRate)
	}
	if acc.Sampler.Oracles["exact"] == 0 {
		t.Fatalf("oracle methods = %v, want exact scans on a 300-vector db", acc.Sampler.Oracles)
	}
	st := acc.Models["m"]
	if st.P50 < 1 || st.P95 < st.P50 {
		t.Fatalf("q-error quantiles malformed: p50=%v p95=%v", st.P50, st.P95)
	}
	if len(st.Buckets) < 2 {
		t.Fatalf("threshold buckets = %v, want multiple bands populated", st.Buckets)
	}
	if len(st.Partitions) == 0 {
		t.Fatalf("no partition breakdown for a partitioned model: %+v", st)
	}
	if len(st.Worst) == 0 {
		t.Fatal("worst-N list empty")
	}
	for _, w := range st.Worst {
		if len(w.TraceID) != 16 || w.TraceID == strings.Repeat("0", 16) {
			t.Fatalf("worst entry without a trace ID: %+v", w)
		}
		if w.QError < 1 {
			t.Fatalf("worst entry q-error %v < 1", w.QError)
		}
	}

	// The shifted traffic must register on the workload detector and
	// surface as retraining advice in /stats.
	wls, ok := acc.Workload["m"]
	if !ok || wls.LiveSamples == 0 {
		t.Fatalf("workload detector empty: %+v", acc.Workload)
	}
	if wls.Divergence <= 0.05 || wls.Exceeded == 0 {
		t.Fatalf("shifted workload not detected: %+v", wls)
	}
	resp, err := client.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Shadow *struct {
			Sampled uint64 `json:"sampled"`
		} `json:"shadow"`
		Ingest map[string]struct {
			WorkloadDivergence float64 `json:"workload_divergence"`
			RetrainAdvised     bool    `json:"retrain_advised"`
		} `json:"ingest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Shadow == nil || stats.Shadow.Sampled == 0 {
		t.Fatalf("/stats shadow section missing")
	}
	if ing := stats.Ingest["m"]; !ing.RetrainAdvised || ing.WorkloadDivergence <= 0.05 {
		t.Fatalf("/stats ingest advice = %+v, want retrain_advised with divergence", stats.Ingest)
	}

	// /metrics exposes the new shadow and workload families.
	resp, err = client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(raw)
	for _, want := range []string{
		"selestd_shadow_sample_rate 0.1",
		`selestd_shadow_qerror{model="m",bucket="all",quantile="p50"}`,
		`selestd_shadow_partition_qerror{model="m",partition=`,
		`selestd_shadow_samples_total{model="m"}`,
		"selestd_shadow_dropped_total",
		`selestd_shadow_oracle_truths_total{method="exact"}`,
		`selestd_workload_divergence{model="m"}`,
		`selestd_workload_shift_exceeded_total{model="m"}`,
		"selestd_workload_shift_threshold 0.05",
		`selestd_ingest_retrain_advised{model="m"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("full /metrics payload:\n%s", metrics)
	}
}
