package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"selnet/internal/selnet"
	"selnet/internal/vecdata"
)

// TestObservabilitySmoke is the end-to-end acceptance test for the
// observability layer, run against the real binary: selestd is started
// with tracing, kernel timing, the pprof debug listener and a drift
// threshold, fed estimates and an update batch, and then every surface
// is checked — X-Trace-Id on responses, /v1/buildinfo, /debug/traces
// spans carrying all pipeline stages, kernel and q-error series in
// /metrics, and the pprof endpoint. The CI `obs-smoke` job runs this.
func TestObservabilitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives the real daemon")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "selestd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	rng := rand.New(rand.NewSource(71))
	db := vecdata.SyntheticFace(rng, 300, 4)
	wl := vecdata.GeometricWorkload(rng, db, 10, 4)
	cfg := selnet.Config{
		L: 4, EmbedDim: 4,
		AEHidden: []int{8}, AELatent: 4,
		TauHidden: []int{8}, MHidden: []int{8},
		TMax: wl.TMax, Lambda: 0.1, QueryDependentTau: true, NormEps: 1e-6,
	}
	m := selnet.NewNet(rng, db.Dim, cfg)
	tc := selnet.TrainConfig{Epochs: 1, Batch: 32, LR: 5e-3, HuberDelta: 1.345, LogEps: 1e-3, Seed: 1}
	cut := len(wl.Queries) * 3 / 4
	m.Fit(tc, db, wl.Queries[:cut], wl.Queries[cut:])
	modelPath := filepath.Join(dir, "model.gob")
	if err := m.SaveFile(modelPath); err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "data.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := vecdata.WriteCSV(f, db); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	addr := freeAddr(t)
	debugAddr := freeAddr(t)
	base := "http://" + addr
	args := []string{
		"-addr", addr,
		"-model", "m=" + modelPath,
		"-data", "m=" + csvPath,
		"-debug-addr", debugAddr,
		// Every span lands in the slow list, every update retrains (and
		// therefore scores drift) with one cheap epoch.
		"-trace-slow", "1us",
		"-drift-qerror", "100",
		"-delta-u", "1e18",
		"-retrain-epochs", "1",
		"-update-queries", "8",
	}
	daemon := startDaemon(t, bin, args, base)
	defer func() {
		daemon.Process.Signal(syscall.SIGTERM)
		daemon.Wait()
	}()
	client := &http.Client{Timeout: 5 * time.Second}

	// Estimates with distinct queries (cache misses) exercise the full
	// queue/fuse/execute pipeline; each response must carry a trace ID.
	traceIDs := map[string]bool{}
	for i := 0; i < 5; i++ {
		q := append([]float64(nil), db.Vecs[i]...)
		body, _ := json.Marshal(map[string]any{"model": "m", "query": q, "t": wl.TMax / 2})
		resp, err := client.Post(base+"/v1/estimate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate %d: status %d", i, resp.StatusCode)
		}
		id := resp.Header.Get("X-Trace-Id")
		if len(id) != 16 {
			t.Fatalf("estimate %d: X-Trace-Id %q", i, id)
		}
		traceIDs[id] = true
	}
	if len(traceIDs) != 5 {
		t.Fatalf("trace ids not distinct: %v", traceIDs)
	}

	// Build info is served on its own route.
	resp, err := client.Get(base + "/v1/buildinfo")
	if err != nil {
		t.Fatal(err)
	}
	var bi struct {
		GoVersion     string  `json:"go_version"`
		GOMAXPROCS    int     `json:"gomaxprocs"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&bi); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || bi.GoVersion == "" || bi.GOMAXPROCS < 1 || bi.UptimeSeconds <= 0 {
		t.Fatalf("buildinfo: status %d payload %+v", resp.StatusCode, bi)
	}

	// One acknowledged update batch triggers an ingest cycle, whose
	// drift scoring publishes rolling q-error quantiles.
	seq, ok := postUpdate(t, client, base, [][]float64{{5, 0.1, 0.2, 0.3}, {5, 1.1, 1.2, 1.3}})
	if !ok || seq == 0 {
		t.Fatalf("update not acknowledged: seq %d ok=%v", seq, ok)
	}
	deadline := time.Now().Add(60 * time.Second)
	for getStats(t, client, base).AppliedSeq < seq {
		if time.Now().After(deadline) {
			t.Fatalf("update %d never applied", seq)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// /metrics carries the kernel-timing, per-stage and drift series.
	resp, err = client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(raw)
	for _, want := range []string{
		"selestd_kernel_timing_enabled 1",
		"selestd_kernel_seconds_total{kernel=",
		"selestd_kernel_calls_total{kernel=",
		`selestd_stage_duration_seconds_bucket{stage="execute"`,
		`selestd_stage_duration_seconds_bucket{stage="decode"`,
		"selestd_request_duration_seconds_count",
		"selestd_trace_spans_total",
		`selestd_drift_qerror{model="m",quantile="p50"}`,
		`selestd_drift_qerror{model="m",quantile="p95"}`,
		`selestd_drift_cycles_total{model="m"} 1`,
		"selestd_drift_qerror_threshold 100",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("full /metrics payload:\n%s", metrics)
	}

	// /debug/traces returns recent spans with every pipeline stage, and
	// the 1µs slow threshold retains them in the slow list too.
	resp, err = client.Get(base + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var traces struct {
		Stats struct {
			Recorded uint64 `json:"recorded"`
		} `json:"stats"`
		Recent []struct {
			TraceID  string           `json:"trace_id"`
			Route    string           `json:"route"`
			TotalNs  int64            `json:"total_ns"`
			StagesNs map[string]int64 `json:"stages_ns"`
		} `json:"recent"`
		Slow []json.RawMessage `json:"slow"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if traces.Stats.Recorded < 5 {
		t.Fatalf("recorded %d spans, want >= 5", traces.Stats.Recorded)
	}
	if len(traces.Slow) == 0 {
		t.Fatal("slow list empty despite 1us threshold")
	}
	found := false
	for _, sp := range traces.Recent {
		if sp.Route != "/v1/estimate" || !traceIDs[sp.TraceID] {
			continue
		}
		found = true
		if sp.TotalNs <= 0 {
			t.Fatalf("span %s total_ns %d", sp.TraceID, sp.TotalNs)
		}
		for _, stage := range []string{"decode", "cache", "queue", "fuse", "execute", "encode"} {
			if _, ok := sp.StagesNs[stage]; !ok {
				t.Fatalf("span %s missing stage %q: %+v", sp.TraceID, stage, sp.StagesNs)
			}
		}
		if sp.StagesNs["execute"] <= 0 {
			t.Fatalf("span %s execute stage empty: %+v", sp.TraceID, sp.StagesNs)
		}
	}
	if !found {
		t.Fatalf("no recent span matches an estimate trace id: %+v", traces.Recent)
	}

	// The pprof listener answers on the separate debug address.
	resp, err = client.Get("http://" + debugAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d", resp.StatusCode)
	}
}
