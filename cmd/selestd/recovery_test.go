package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"selnet/internal/selnet"
	"selnet/internal/vecdata"
)

// TestKillRestartRecovery is the durability acceptance test for the
// journaled daemon, run against the real binary: selestd is built,
// started with -journal-dir, fed acknowledged update batches, SIGKILLed
// mid-ingest, and restarted over the same journal directory. Every
// batch that was answered 202 before the kill must be reflected in the
// /stats applied counters after restart and replay — zero
// acknowledged-batch loss. The CI `recovery` job runs exactly this.
func TestKillRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives the real daemon")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "selestd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// A small trained model plus its CSV database, as an operator would
	// produce with 'selest train'.
	rng := rand.New(rand.NewSource(70))
	db := vecdata.SyntheticFace(rng, 300, 4)
	wl := vecdata.GeometricWorkload(rng, db, 10, 4)
	cfg := selnet.Config{
		L: 4, EmbedDim: 4,
		AEHidden: []int{8}, AELatent: 4,
		TauHidden: []int{8}, MHidden: []int{8},
		TMax: wl.TMax, Lambda: 0.1, QueryDependentTau: true, NormEps: 1e-6,
	}
	m := selnet.NewNet(rng, db.Dim, cfg)
	tc := selnet.TrainConfig{Epochs: 1, Batch: 32, LR: 5e-3, HuberDelta: 1.345, LogEps: 1e-3, Seed: 1}
	cut := len(wl.Queries) * 3 / 4
	m.Fit(tc, db, wl.Queries[:cut], wl.Queries[cut:])
	modelPath := filepath.Join(dir, "model.gob")
	if err := m.SaveFile(modelPath); err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "data.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := vecdata.WriteCSV(f, db); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	jdir := filepath.Join(dir, "journal")
	addr := freeAddr(t)
	base := "http://" + addr
	args := []string{
		"-addr", addr,
		"-model", "m=" + modelPath,
		"-data", "m=" + csvPath,
		"-journal-dir", jdir,
		// Absorb every update (huge delta_U) with one cheap epoch cap so
		// cycles are fast; snapshots are pushed out of the way so replay
		// covers every batch deterministically.
		"-delta-u", "1e18",
		"-retrain-epochs", "1",
		"-update-queries", "8",
		"-snapshot-every", "100000",
	}

	daemon := startDaemon(t, bin, args, base)

	// Stream acknowledged batches. Each 202 is a durability promise.
	var lastSeq uint64
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < 25; i++ {
		ins := [][]float64{
			{float64(i), 0.1, 0.2, 0.3},
			{float64(i), 1.1, 1.2, 1.3},
			{float64(i), 2.1, 2.2, 2.3},
		}
		seq, ok := postUpdate(t, client, base, ins)
		if !ok {
			i-- // 429 backpressure: retry the same batch
			time.Sleep(20 * time.Millisecond)
			continue
		}
		lastSeq = seq
	}
	if lastSeq == 0 {
		t.Fatal("no batch was acknowledged")
	}
	st := getStats(t, client, base)
	if !st.Durable {
		t.Fatalf("daemon is not journaling: %+v", st)
	}

	// SIGKILL mid-ingest: no drain, no fsync beyond what each 202
	// already guaranteed.
	if err := daemon.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	daemon.Wait()

	// Restart over the same journal directory and wait for replay.
	daemon2 := startDaemon(t, bin, args, base)
	defer func() {
		daemon2.Process.Signal(syscall.SIGTERM)
		daemon2.Wait()
	}()
	deadline := time.Now().Add(60 * time.Second)
	var after daemonIngestStats
	for {
		after = getStats(t, client, base)
		if after.AppliedSeq >= lastSeq {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replay incomplete: applied_seq %d < acked %d (%+v)", after.AppliedSeq, lastSeq, after)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !after.Durable || after.ReplayedBatches != lastSeq {
		t.Fatalf("restart replayed %d batches, want %d (%+v)", after.ReplayedBatches, lastSeq, after)
	}

	// The recovered daemon keeps working: estimates answer and new
	// batches continue the acknowledged sequence.
	body, _ := json.Marshal(map[string]any{"model": "m", "query": db.Vecs[0], "t": wl.TMax / 2})
	resp, err := client.Post(base+"/v1/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate after recovery: status %d", resp.StatusCode)
	}
	seq, ok := postUpdate(t, client, base, [][]float64{{9, 9, 9, 9}})
	if !ok || seq != lastSeq+1 {
		t.Fatalf("post-recovery update got seq %d (ok=%v), want %d", seq, ok, lastSeq+1)
	}
}

// daemonIngestStats is the slice of /stats the test asserts on.
type daemonIngestStats struct {
	AppliedSeq      uint64 `json:"applied_seq"`
	NextSeq         uint64 `json:"next_seq"`
	Durable         bool   `json:"durable"`
	ReplayedBatches uint64 `json:"replayed_batches"`
}

func startDaemon(t *testing.T, bin string, args []string, base string) *exec.Cmd {
	t.Helper()
	var out bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if cmd.ProcessState != nil || time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("daemon did not come up: %v\n%s", err, out.String())
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func postUpdate(t *testing.T, client *http.Client, base string, ins [][]float64) (uint64, bool) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"insert": ins})
	resp, err := client.Post(base+"/v1/models/m/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
	case http.StatusTooManyRequests:
		return 0, false
	default:
		t.Fatalf("update status %d", resp.StatusCode)
	}
	var ack struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack.Seq, true
}

func getStats(t *testing.T, client *http.Client, base string) daemonIngestStats {
	t.Helper()
	resp, err := client.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Ingest map[string]daemonIngestStats `json:"ingest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Ingest["m"]
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}
