// Command selest is the end-to-end CLI for the SelNet selectivity
// estimator: generate a synthetic dataset, build a labelled workload,
// train a model, evaluate it, and answer ad-hoc selectivity queries.
//
// Typical session:
//
//	selest gen      -setting fasttext-cos -n 2000 -dim 16 -out data.gob
//	selest workload -data data.gob -queries 100 -w 8 -out wl.gob
//	selest train    -data data.gob -workload wl.gob -epochs 40 -out model.gob
//	selest evaluate -model model.gob -workload wl.gob
//	selest estimate -model model.gob -data data.gob -index 7 -t 0.25
//	selest estimate -model model.gob -data data.gob -index 7,8,9 -t 0.1,0.25
//
// Comma-separated -index and -t lists estimate every (query, threshold)
// pair in one batched tensor pass — the same path selestd serves.
//
// Against a running selestd, 'selest models -addr http://host:8080'
// prints the daemon's model listing: every loaded estimator's kind,
// dimensionality, t_max, registry generation, source, partition count,
// and — with -router set on the daemon — its current router assignment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"selnet/internal/distance"
	"selnet/internal/metrics"
	"selnet/internal/selnet"
	"selnet/internal/tensor"
	"selnet/internal/vecdata"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "workload":
		err = cmdWorkload(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "evaluate":
		err = cmdEvaluate(os.Args[2:])
	case "estimate":
		err = cmdEstimate(os.Args[2:])
	case "models":
		err = cmdModels(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "selest: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "selest: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `selest - consistent selectivity estimation for high-dimensional data

commands:
  gen       generate a synthetic vector dataset
  workload  build a labelled (query, threshold, selectivity) workload
  train     train a SelNet estimator
  evaluate  report MSE/MAE/MAPE of a trained model on a workload split
  estimate  estimate the selectivity of one or more (query, threshold) pairs
  models    list the models a running selestd serves (kind, dim, router assignment)

run 'selest <command> -h' for command flags.
`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	setting := fs.String("setting", "fasttext-cos", "dataset stand-in: fasttext-cos, fasttext-l2, face-cos, youtube-cos")
	n := fs.Int("n", 2000, "number of vectors")
	dim := fs.Int("dim", 16, "dimensionality")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "data.gob", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	var db *vecdata.Database
	switch *setting {
	case "fasttext-cos":
		db = vecdata.SyntheticFasttext(rng, *n, *dim, distance.Cosine)
	case "fasttext-l2":
		db = vecdata.SyntheticFasttext(rng, *n, *dim, distance.Euclidean)
	case "face-cos":
		db = vecdata.SyntheticFace(rng, *n, *dim)
	case "youtube-cos":
		db = vecdata.SyntheticYouTube(rng, *n, *dim)
	default:
		return fmt.Errorf("unknown setting %q", *setting)
	}
	if err := vecdata.SaveDatabaseFile(*out, db); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d vectors, dim %d, distance %v\n", *out, db.Size(), db.Dim, db.Dist)
	return nil
}

func cmdWorkload(args []string) error {
	fs := flag.NewFlagSet("workload", flag.ExitOnError)
	dataPath := fs.String("data", "data.gob", "dataset file (.gob from 'selest gen', or .csv of comma-separated vectors)")
	dist := fs.String("dist", "cos", "distance for .csv datasets: cos or l2")
	queries := fs.Int("queries", 100, "number of query vectors")
	w := fs.Int("w", 8, "thresholds per query (geometric selectivity sequence)")
	seed := fs.Int64("seed", 2, "random seed")
	out := fs.String("out", "wl.gob", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	db, err := loadAnyDatabase(*dataPath, *dist)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	wl := vecdata.GeometricWorkload(rng, db, *queries, *w)
	train, valid, test := wl.Split(rng)
	s := &vecdata.SplitWorkload{
		Setting: db.Name, TMax: wl.TMax,
		Train: train, Valid: valid, Test: test,
	}
	if err := vecdata.SaveSplitWorkloadFile(*out, s); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d/%d/%d train/valid/test queries, t_max %.4f\n",
		*out, len(train), len(valid), len(test), wl.TMax)
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	dataPath := fs.String("data", "data.gob", "dataset file (.gob or .csv)")
	dist := fs.String("dist", "cos", "distance for .csv datasets: cos or l2")
	wlPath := fs.String("workload", "wl.gob", "workload file")
	epochs := fs.Int("epochs", 40, "training epochs")
	controlPoints := fs.Int("l", 20, "interior control points L")
	lr := fs.Float64("lr", 3e-3, "learning rate")
	seed := fs.Int64("seed", 3, "random seed")
	out := fs.String("out", "model.gob", "output model file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	db, err := loadAnyDatabase(*dataPath, *dist)
	if err != nil {
		return err
	}
	wl, err := vecdata.LoadSplitWorkloadFile(*wlPath)
	if err != nil {
		return err
	}
	cfg := selnet.DefaultConfig()
	cfg.TMax = wl.TMax
	cfg.L = *controlPoints
	tc := selnet.DefaultTrainConfig()
	tc.Epochs = *epochs
	tc.LR = *lr
	tc.Seed = *seed
	rng := rand.New(rand.NewSource(*seed))
	net := selnet.NewNet(rng, db.Dim, cfg)
	fmt.Printf("training SelNet-ct: dim %d, L=%d, %d epochs on %d queries...\n",
		db.Dim, cfg.L, tc.Epochs, len(wl.Train))
	net.Fit(tc, db, wl.Train, wl.Valid)
	if err := net.SaveFile(*out); err != nil {
		return err
	}
	e := metrics.Evaluate(net, wl.Valid)
	fmt.Printf("wrote %s (validation: MSE %.4g, MAE %.4g, MAPE %.3f)\n", *out, e.MSE, e.MAE, e.MAPE)
	return nil
}

func cmdEvaluate(args []string) error {
	fs := flag.NewFlagSet("evaluate", flag.ExitOnError)
	modelPath := fs.String("model", "model.gob", "trained model file")
	wlPath := fs.String("workload", "wl.gob", "workload file")
	split := fs.String("split", "test", "split to evaluate: train, valid or test")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := selnet.LoadNetFile(*modelPath)
	if err != nil {
		return err
	}
	wl, err := vecdata.LoadSplitWorkloadFile(*wlPath)
	if err != nil {
		return err
	}
	var queries []vecdata.Query
	switch *split {
	case "train":
		queries = wl.Train
	case "valid":
		queries = wl.Valid
	case "test":
		queries = wl.Test
	default:
		return fmt.Errorf("unknown split %q", *split)
	}
	e := metrics.Evaluate(net, queries)
	ms := metrics.AvgEstimationTime(net, queries)
	fmt.Printf("%s split (%d queries): MSE %.4g  MAE %.4g  MAPE %.3f  avg est. time %.4f ms\n",
		*split, len(queries), e.MSE, e.MAE, e.MAPE, ms)
	return nil
}

func cmdEstimate(args []string) error {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	modelPath := fs.String("model", "model.gob", "trained model file")
	dataPath := fs.String("data", "", "dataset file, .gob or .csv (for -index queries and exact counts)")
	dist := fs.String("dist", "cos", "distance for .csv datasets: cos or l2")
	indexStr := fs.String("index", "", "comma-separated database vector indices to use as queries")
	vecStr := fs.String("vec", "", "comma-separated query vector (alternative to -index)")
	tStr := fs.String("t", "0.1", "comma-separated distance thresholds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := selnet.LoadNetFile(*modelPath)
	if err != nil {
		return err
	}
	var db *vecdata.Database
	if *dataPath != "" {
		if db, err = loadAnyDatabase(*dataPath, *dist); err != nil {
			return err
		}
	}
	ts, err := parseVector(*tStr)
	if err != nil {
		return fmt.Errorf("bad -t: %w", err)
	}

	// Collect the query vectors: one from -vec, or any number from the
	// comma-separated -index list.
	var queries [][]float64
	var labels []string
	switch {
	case *vecStr != "" && *indexStr != "":
		return fmt.Errorf("provide -index or -vec, not both")
	case *vecStr != "":
		x, err := parseVector(*vecStr)
		if err != nil {
			return err
		}
		queries, labels = [][]float64{x}, []string{"vec"}
	case *indexStr != "":
		if db == nil {
			return fmt.Errorf("-index requires -data")
		}
		for _, part := range strings.Split(*indexStr, ",") {
			idx, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad index %q: %w", part, err)
			}
			if idx < 0 || idx >= db.Size() {
				return fmt.Errorf("index %d out of range (database holds %d vectors)", idx, db.Size())
			}
			queries = append(queries, db.Vecs[idx])
			labels = append(labels, fmt.Sprintf("#%d", idx))
		}
	default:
		return fmt.Errorf("provide a query via -index or -vec")
	}
	for _, x := range queries {
		if len(x) != net.Dim() {
			return fmt.Errorf("query has dim %d, model expects %d", len(x), net.Dim())
		}
	}

	// One estimate per (query, threshold) pair, computed in a single
	// EstimateBatch tensor pass — the same path selestd serves.
	x := tensor.New(len(queries)*len(ts), net.Dim())
	tcol := make([]float64, 0, len(queries)*len(ts))
	for _, q := range queries {
		for _, t := range ts {
			copy(x.Row(len(tcol)), q)
			tcol = append(tcol, t)
		}
	}
	ests := net.EstimateBatch(x, tcol)

	if len(ests) == 1 {
		fmt.Printf("estimated selectivity at t=%.4f: %.2f\n", ts[0], ests[0])
		if db != nil {
			fmt.Printf("exact selectivity:               %.0f\n", db.Selectivity(queries[0], ts[0]))
		}
		return nil
	}
	if db != nil {
		fmt.Printf("%8s %10s %12s %10s\n", "query", "t", "estimated", "exact")
	} else {
		fmt.Printf("%8s %10s %12s\n", "query", "t", "estimated")
	}
	for i, q := range queries {
		for j, t := range ts {
			est := ests[i*len(ts)+j]
			if db != nil {
				fmt.Printf("%8s %10.4f %12.2f %10.0f\n", labels[i], t, est, db.Selectivity(q, t))
			} else {
				fmt.Printf("%8s %10.4f %12.2f\n", labels[i], t, est)
			}
		}
	}
	return nil
}

// cmdModels prints the model listing of a running selestd: one line per
// loaded estimator with its codec kind, architecture, shape, registry
// generation, and current workload-router assignment.
func cmdModels(args []string) error {
	fs := flag.NewFlagSet("models", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of a running selestd")
	asJSON := fs.Bool("json", false, "print the raw JSON listing instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := http.Get(strings.TrimRight(*addr, "/") + "/v1/models")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Every selestd error is the uniform {"error":{code,message}}
		// envelope; surface its fields rather than the raw body.
		var e struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error.Code != "" {
			return fmt.Errorf("%s: %s (%s)", resp.Status, e.Error.Message, e.Error.Code)
		}
		return fmt.Errorf("GET /v1/models: %s", resp.Status)
	}
	var out struct {
		Models []struct {
			Name       string    `json:"name"`
			Kind       string    `json:"kind"`
			Estimator  string    `json:"estimator"`
			Dim        int       `json:"dim"`
			TMax       float64   `json:"t_max"`
			Source     string    `json:"source"`
			Generation uint64    `json:"generation"`
			LoadedAt   time.Time `json:"loaded_at"`
			Partitions int       `json:"partitions"`
			Router     []string  `json:"router"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("decode /v1/models: %w", err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	if len(out.Models) == 0 {
		fmt.Println("no models loaded")
		return nil
	}
	fmt.Printf("%-12s %-12s %-14s %5s %8s %4s %5s %-14s %s\n",
		"NAME", "KIND", "ESTIMATOR", "DIM", "TMAX", "GEN", "PARTS", "ROUTER", "SOURCE")
	for _, m := range out.Models {
		parts := "-"
		if m.Partitions > 0 {
			parts = strconv.Itoa(m.Partitions)
		}
		router := "-"
		if len(m.Router) > 0 {
			router = strings.Join(m.Router, ",")
		}
		fmt.Printf("%-12s %-12s %-14s %5d %8.4f %4d %5s %-14s %s\n",
			m.Name, m.Kind, m.Estimator, m.Dim, m.TMax, m.Generation, parts, router, m.Source)
	}
	return nil
}

// loadAnyDatabase reads a dataset from a gob file written by 'selest gen'
// or, when the path ends in .csv, from a CSV of comma-separated vectors
// (one per line) under the given distance function.
func loadAnyDatabase(path, dist string) (*vecdata.Database, error) {
	if strings.HasSuffix(path, ".csv") {
		d, err := distance.Parse(dist)
		if err != nil {
			return nil, err
		}
		return vecdata.ReadCSVFile(path, d)
	}
	return vecdata.LoadDatabaseFile(path)
}

func parseVector(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	v := make([]float64, len(parts))
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad vector component %q: %w", p, err)
		}
		v[i] = f
	}
	return v, nil
}
