// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a stable JSON document, and optionally enforces the perf gates CI
// runs on every PR:
//
//   - -fail-zero-allocs: any listed benchmark reporting allocs/op > 0
//     fails the run (the compiled-plan hot path must stay allocation-free).
//   - -max-allocs: listed benchmarks must not exceed a pinned allocs/op
//     budget (paths that legitimately allocate, like the coalescer's
//     per-request reply channel, must not grow new allocations).
//   - -baseline + -regress: listed benchmarks (exact name or "name/"
//     sub-benchmark prefix) must not regress ns/op by more than
//     -max-regress-pct versus a previously committed benchjson document.
//
// CI uses it to write BENCH_infer.json — the committed perf baseline
// future PRs diff against — and to fail PRs that break the gates.
//
// Usage:
//
//	go test -bench=... -benchmem -run '^$' ./... | benchjson \
//	    -o BENCH_infer.json \
//	    -fail-zero-allocs BenchmarkNetEstimatePlan,BenchmarkNetEstimateBatch64Plan \
//	    -max-allocs 'BenchmarkServeCoalesced=2' \
//	    -baseline BENCH_infer.base.json -regress BenchmarkMatMul -max-regress-pct 20
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp mirror the standard -benchmem
	// columns (Bytes/Allocs are -1 when -benchmem was not in effect).
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds any custom b.ReportMetric units (e.g. "reqs/batch").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// KernelTiming is one per-kernel attribution lifted from a benchmark's
// custom metrics. The kernel-timing benchmarks report
// `kernel:<name>:ns/op` and `kernel:<name>:calls/op` via b.ReportMetric;
// benchjson folds each pair into one entry here instead of leaving the
// raw metric keys in Result.Metrics.
type KernelTiming struct {
	Benchmark  string  `json:"benchmark"`
	Kernel     string  `json:"kernel"`
	NsPerOp    float64 `json:"ns_per_op"`
	CallsPerOp float64 `json:"calls_per_op"`
}

type document struct {
	Benchmarks    []Result       `json:"benchmarks"`
	KernelTimings []KernelTiming `json:"kernel_timings,omitempty"`
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	failZero := flag.String("fail-zero-allocs", "",
		"comma-separated benchmark names that must report 0 allocs/op")
	maxAllocs := flag.String("max-allocs", "",
		"comma-separated name=N pins; each benchmark must report allocs/op <= N")
	baselinePath := flag.String("baseline", "",
		"prior benchjson document to diff ns/op against")
	regress := flag.String("regress", "",
		"comma-separated benchmark names (exact, or sub-benchmark prefixes) gated against -baseline")
	maxRegressPct := flag.Float64("max-regress-pct", 20,
		"fail when a -regress benchmark's ns/op exceeds the baseline by more than this percentage")
	flag.Parse()

	doc := document{Benchmarks: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fatal("read stdin: %v", err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal("no benchmark lines found on stdin")
	}
	doc.KernelTimings = extractKernelTimings(doc.Benchmarks)

	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	b = append(b, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fatal("write %s: %v", *out, err)
		}
	} else {
		os.Stdout.Write(b)
	}

	problems := checkZeroAllocs(doc.Benchmarks, *failZero)
	problems = append(problems, checkMaxAllocs(doc.Benchmarks, *maxAllocs)...)
	if *baselinePath != "" && *regress != "" {
		base, err := readBaseline(*baselinePath)
		if err != nil {
			fatal("baseline: %v", err)
		}
		problems = append(problems, checkRegressions(doc.Benchmarks, base, *regress, *maxRegressPct)...)
	}
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "benchjson: %s\n", p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
}

// splitList parses a comma-separated flag value.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// checkZeroAllocs enforces -fail-zero-allocs: every listed benchmark must
// be present and report exactly 0 allocs/op.
func checkZeroAllocs(results []Result, list string) []string {
	var problems []string
	for _, name := range splitList(list) {
		found := false
		for _, r := range results {
			if r.Name != name {
				continue
			}
			found = true
			if r.AllocsPerOp != 0 {
				problems = append(problems, fmt.Sprintf("%s reports %v allocs/op, want 0", name, r.AllocsPerOp))
			}
		}
		if !found {
			problems = append(problems, fmt.Sprintf("required benchmark %s missing from input", name))
		}
	}
	return problems
}

// checkMaxAllocs enforces -max-allocs name=N pins: each listed benchmark
// must be present and report allocs/op <= N.
func checkMaxAllocs(results []Result, spec string) []string {
	var problems []string
	for _, pin := range splitList(spec) {
		name, nStr, ok := strings.Cut(pin, "=")
		if !ok {
			problems = append(problems, fmt.Sprintf("bad -max-allocs entry %q, want name=N", pin))
			continue
		}
		limit, err := strconv.ParseFloat(nStr, 64)
		if err != nil {
			problems = append(problems, fmt.Sprintf("bad -max-allocs limit %q: %v", pin, err))
			continue
		}
		found := false
		for _, r := range results {
			if r.Name != name {
				continue
			}
			found = true
			if r.AllocsPerOp > limit {
				problems = append(problems, fmt.Sprintf("%s reports %v allocs/op, pinned at %v", name, r.AllocsPerOp, limit))
			}
		}
		if !found {
			problems = append(problems, fmt.Sprintf("required benchmark %s missing from input", name))
		}
	}
	return problems
}

// readBaseline loads a previously emitted benchjson document.
func readBaseline(path string) ([]Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc document
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("parse %s: %v", path, err)
	}
	return doc.Benchmarks, nil
}

// regressMatch reports whether a benchmark name is covered by a -regress
// entry: an exact match, or a sub-benchmark of it ("BenchmarkMatMul"
// covers "BenchmarkMatMul/64x48x352").
func regressMatch(entry, name string) bool {
	return name == entry || strings.HasPrefix(name, entry+"/")
}

// checkRegressions diffs current ns/op against the baseline for every
// benchmark covered by the -regress list. Benchmarks new in the current
// run (absent from the baseline) pass — the next committed baseline will
// cover them — but a listed entry matching nothing at all in the current
// run fails, so a gated benchmark cannot silently vanish.
func checkRegressions(cur, base []Result, list string, maxPct float64) []string {
	baseNs := make(map[string]float64, len(base))
	for _, r := range base {
		baseNs[r.Name] = r.NsPerOp
	}
	var problems []string
	for _, entry := range splitList(list) {
		matched := false
		for _, r := range cur {
			if !regressMatch(entry, r.Name) {
				continue
			}
			matched = true
			b, ok := baseNs[r.Name]
			if !ok || b <= 0 {
				continue
			}
			if pct := (r.NsPerOp - b) / b * 100; pct > maxPct {
				problems = append(problems, fmt.Sprintf(
					"%s regressed: %.0f ns/op vs baseline %.0f (%+.1f%%, limit %+.0f%%)",
					r.Name, r.NsPerOp, b, pct, maxPct))
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("regression-gated benchmark %s missing from input", entry))
		}
	}
	return problems
}

// extractKernelTimings moves kernel:<name>:{ns,calls}/op metrics out of
// each result's Metrics map into a flat, sorted kernel-timing table.
func extractKernelTimings(results []Result) []KernelTiming {
	var out []KernelTiming
	for i := range results {
		r := &results[i]
		perKernel := make(map[string]*KernelTiming)
		for unit, v := range r.Metrics {
			rest, ok := strings.CutPrefix(unit, "kernel:")
			if !ok {
				continue
			}
			kernel, metric, ok := strings.Cut(rest, ":")
			if !ok {
				continue
			}
			kt := perKernel[kernel]
			if kt == nil {
				kt = &KernelTiming{Benchmark: r.Name, Kernel: kernel}
				perKernel[kernel] = kt
			}
			switch metric {
			case "ns/op":
				kt.NsPerOp = v
			case "calls/op":
				kt.CallsPerOp = v
			default:
				continue
			}
			delete(r.Metrics, unit)
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		for _, kt := range perKernel {
			out = append(out, *kt)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		return out[i].Kernel < out[j].Kernel
	})
	return out
}

// parseLine parses one `BenchmarkX-8  N  v unit  v unit ...` line.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	name := f[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := Result{Name: name, Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, seen
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
