// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a stable JSON document, and optionally enforces an
// allocation-free hot path: with -fail-zero-allocs, any listed
// benchmark reporting allocs/op > 0 fails the run. CI uses it to write
// BENCH_infer.json — the committed perf baseline future PRs diff
// against — and to guarantee the compiled-plan inference path stays at
// zero steady-state allocations.
//
// Usage:
//
//	go test -bench=... -benchmem -run '^$' ./... | benchjson \
//	    -o BENCH_infer.json \
//	    -fail-zero-allocs BenchmarkNetEstimatePlan,BenchmarkNetEstimateBatch64Plan
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp mirror the standard -benchmem
	// columns (Bytes/Allocs are -1 when -benchmem was not in effect).
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds any custom b.ReportMetric units (e.g. "reqs/batch").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// KernelTiming is one per-kernel attribution lifted from a benchmark's
// custom metrics. The kernel-timing benchmarks report
// `kernel:<name>:ns/op` and `kernel:<name>:calls/op` via b.ReportMetric;
// benchjson folds each pair into one entry here instead of leaving the
// raw metric keys in Result.Metrics.
type KernelTiming struct {
	Benchmark  string  `json:"benchmark"`
	Kernel     string  `json:"kernel"`
	NsPerOp    float64 `json:"ns_per_op"`
	CallsPerOp float64 `json:"calls_per_op"`
}

type document struct {
	Benchmarks    []Result       `json:"benchmarks"`
	KernelTimings []KernelTiming `json:"kernel_timings,omitempty"`
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	failZero := flag.String("fail-zero-allocs", "",
		"comma-separated benchmark names that must report 0 allocs/op")
	flag.Parse()

	doc := document{Benchmarks: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fatal("read stdin: %v", err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal("no benchmark lines found on stdin")
	}
	doc.KernelTimings = extractKernelTimings(doc.Benchmarks)

	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	b = append(b, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fatal("write %s: %v", *out, err)
		}
	} else {
		os.Stdout.Write(b)
	}

	if *failZero != "" {
		failed := false
		for _, name := range strings.Split(*failZero, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			found := false
			for _, r := range doc.Benchmarks {
				if r.Name != name {
					continue
				}
				found = true
				if r.AllocsPerOp != 0 {
					fmt.Fprintf(os.Stderr, "benchjson: %s reports %v allocs/op, want 0\n", name, r.AllocsPerOp)
					failed = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "benchjson: required benchmark %s missing from input\n", name)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
	}
}

// extractKernelTimings moves kernel:<name>:{ns,calls}/op metrics out of
// each result's Metrics map into a flat, sorted kernel-timing table.
func extractKernelTimings(results []Result) []KernelTiming {
	var out []KernelTiming
	for i := range results {
		r := &results[i]
		perKernel := make(map[string]*KernelTiming)
		for unit, v := range r.Metrics {
			rest, ok := strings.CutPrefix(unit, "kernel:")
			if !ok {
				continue
			}
			kernel, metric, ok := strings.Cut(rest, ":")
			if !ok {
				continue
			}
			kt := perKernel[kernel]
			if kt == nil {
				kt = &KernelTiming{Benchmark: r.Name, Kernel: kernel}
				perKernel[kernel] = kt
			}
			switch metric {
			case "ns/op":
				kt.NsPerOp = v
			case "calls/op":
				kt.CallsPerOp = v
			default:
				continue
			}
			delete(r.Metrics, unit)
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		for _, kt := range perKernel {
			out = append(out, *kt)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		return out[i].Kernel < out[j].Kernel
	})
	return out
}

// parseLine parses one `BenchmarkX-8  N  v unit  v unit ...` line.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	name := f[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := Result{Name: name, Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, seen
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
