package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkNetEstimatePlan-8   35275   33921 ns/op   0 B/op   0 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkNetEstimatePlan" || r.Iterations != 35275 ||
		r.NsPerOp != 33921 || r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Fatalf("parsed %+v", r)
	}

	r, ok = parseLine("BenchmarkX 10 5.5 ns/op 3 reqs/batch")
	if !ok || r.Metrics["reqs/batch"] != 3 {
		t.Fatalf("custom metric: %+v ok=%v", r, ok)
	}

	for _, bad := range []string{
		"ok  	selnet/internal/selnet	1.2s",
		"PASS",
		"goos: linux",
		"BenchmarkNoValue-8",
	} {
		if _, ok := parseLine(bad); ok {
			t.Fatalf("accepted non-benchmark line %q", bad)
		}
	}
}

func TestExtractKernelTimings(t *testing.T) {
	results := []Result{
		{
			Name: "BenchmarkNetEstimatePlanKernels",
			Metrics: map[string]float64{
				"kernel:matmul:ns/op":     12000,
				"kernel:matmul:calls/op":  6,
				"kernel:softmax:ns/op":    800,
				"kernel:softmax:calls/op": 1,
				"reqs/batch":              4,
			},
		},
		{Name: "BenchmarkOther", Metrics: map[string]float64{"reqs/batch": 2}},
	}
	kts := extractKernelTimings(results)
	if len(kts) != 2 {
		t.Fatalf("got %d kernel timings, want 2: %+v", len(kts), kts)
	}
	// Sorted by benchmark then kernel.
	if kts[0].Kernel != "matmul" || kts[0].NsPerOp != 12000 || kts[0].CallsPerOp != 6 {
		t.Fatalf("matmul entry %+v", kts[0])
	}
	if kts[1].Kernel != "softmax" || kts[1].Benchmark != "BenchmarkNetEstimatePlanKernels" {
		t.Fatalf("softmax entry %+v", kts[1])
	}
	// The kernel keys are consumed; other custom metrics survive.
	if _, left := results[0].Metrics["kernel:matmul:ns/op"]; left {
		t.Fatal("kernel metric left behind in Metrics")
	}
	if results[0].Metrics["reqs/batch"] != 4 || results[1].Metrics["reqs/batch"] != 2 {
		t.Fatalf("non-kernel metrics touched: %+v", results)
	}
}

func TestExtractKernelTimingsEmpty(t *testing.T) {
	results := []Result{{Name: "BenchmarkPlain", Metrics: map[string]float64{}}}
	if kts := extractKernelTimings(results); kts != nil {
		t.Fatalf("expected nil, got %+v", kts)
	}
	if results[0].Metrics != nil {
		t.Fatal("empty Metrics map should be nilled out")
	}
}
