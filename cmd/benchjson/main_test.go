package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkNetEstimatePlan-8   35275   33921 ns/op   0 B/op   0 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkNetEstimatePlan" || r.Iterations != 35275 ||
		r.NsPerOp != 33921 || r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Fatalf("parsed %+v", r)
	}

	r, ok = parseLine("BenchmarkX 10 5.5 ns/op 3 reqs/batch")
	if !ok || r.Metrics["reqs/batch"] != 3 {
		t.Fatalf("custom metric: %+v ok=%v", r, ok)
	}

	for _, bad := range []string{
		"ok  	selnet/internal/selnet	1.2s",
		"PASS",
		"goos: linux",
		"BenchmarkNoValue-8",
	} {
		if _, ok := parseLine(bad); ok {
			t.Fatalf("accepted non-benchmark line %q", bad)
		}
	}
}

func TestExtractKernelTimings(t *testing.T) {
	results := []Result{
		{
			Name: "BenchmarkNetEstimatePlanKernels",
			Metrics: map[string]float64{
				"kernel:matmul:ns/op":     12000,
				"kernel:matmul:calls/op":  6,
				"kernel:softmax:ns/op":    800,
				"kernel:softmax:calls/op": 1,
				"reqs/batch":              4,
			},
		},
		{Name: "BenchmarkOther", Metrics: map[string]float64{"reqs/batch": 2}},
	}
	kts := extractKernelTimings(results)
	if len(kts) != 2 {
		t.Fatalf("got %d kernel timings, want 2: %+v", len(kts), kts)
	}
	// Sorted by benchmark then kernel.
	if kts[0].Kernel != "matmul" || kts[0].NsPerOp != 12000 || kts[0].CallsPerOp != 6 {
		t.Fatalf("matmul entry %+v", kts[0])
	}
	if kts[1].Kernel != "softmax" || kts[1].Benchmark != "BenchmarkNetEstimatePlanKernels" {
		t.Fatalf("softmax entry %+v", kts[1])
	}
	// The kernel keys are consumed; other custom metrics survive.
	if _, left := results[0].Metrics["kernel:matmul:ns/op"]; left {
		t.Fatal("kernel metric left behind in Metrics")
	}
	if results[0].Metrics["reqs/batch"] != 4 || results[1].Metrics["reqs/batch"] != 2 {
		t.Fatalf("non-kernel metrics touched: %+v", results)
	}
}

func TestExtractKernelTimingsEmpty(t *testing.T) {
	results := []Result{{Name: "BenchmarkPlain", Metrics: map[string]float64{}}}
	if kts := extractKernelTimings(results); kts != nil {
		t.Fatalf("expected nil, got %+v", kts)
	}
	if results[0].Metrics != nil {
		t.Fatal("empty Metrics map should be nilled out")
	}
}

func TestCheckZeroAllocs(t *testing.T) {
	results := []Result{
		{Name: "BenchmarkClean", AllocsPerOp: 0},
		{Name: "BenchmarkDirty", AllocsPerOp: 3},
	}
	if p := checkZeroAllocs(results, "BenchmarkClean"); p != nil {
		t.Fatalf("clean benchmark flagged: %v", p)
	}
	if p := checkZeroAllocs(results, "BenchmarkClean,BenchmarkDirty,BenchmarkGone"); len(p) != 2 {
		t.Fatalf("want 2 problems (dirty + missing), got %v", p)
	}
	if p := checkZeroAllocs(results, ""); p != nil {
		t.Fatalf("empty list produced problems: %v", p)
	}
}

func TestCheckMaxAllocs(t *testing.T) {
	results := []Result{
		{Name: "BenchmarkServeCoalesced", AllocsPerOp: 2},
		{Name: "BenchmarkServeNaive", AllocsPerOp: 1},
	}
	if p := checkMaxAllocs(results, "BenchmarkServeCoalesced=2,BenchmarkServeNaive=1"); p != nil {
		t.Fatalf("within-budget flagged: %v", p)
	}
	if p := checkMaxAllocs(results, "BenchmarkServeCoalesced=1"); len(p) != 1 {
		t.Fatalf("over-budget not flagged: %v", p)
	}
	if p := checkMaxAllocs(results, "BenchmarkGone=1"); len(p) != 1 {
		t.Fatalf("missing benchmark not flagged: %v", p)
	}
	if p := checkMaxAllocs(results, "BenchmarkServeNaive"); len(p) != 1 {
		t.Fatalf("malformed pin not flagged: %v", p)
	}
}

func TestCheckRegressions(t *testing.T) {
	base := []Result{
		{Name: "BenchmarkMatMul/64x64x64", NsPerOp: 100_000},
		{Name: "BenchmarkMatMul/64x48x352", NsPerOp: 70_000},
		{Name: "BenchmarkNetEstimatePlan", NsPerOp: 7_000},
	}
	cur := []Result{
		{Name: "BenchmarkMatMul/64x64x64", NsPerOp: 110_000},  // +10%: fine
		{Name: "BenchmarkMatMul/64x48x352", NsPerOp: 100_000}, // +43%: regression
		{Name: "BenchmarkMatMul/8x8x8", NsPerOp: 500},         // new in this run: fine
		{Name: "BenchmarkNetEstimatePlan", NsPerOp: 7_100},
	}
	p := checkRegressions(cur, base, "BenchmarkMatMul,BenchmarkNetEstimatePlan", 20)
	if len(p) != 1 || !strings.Contains(p[0], "64x48x352") {
		t.Fatalf("want one 64x48x352 regression, got %v", p)
	}
	// Tighten the limit below +10% and the square benchmark trips too.
	if p := checkRegressions(cur, base, "BenchmarkMatMul", 5); len(p) != 2 {
		t.Fatalf("want 2 regressions at 5%%, got %v", p)
	}
	// A gated name matching nothing in the current run must fail loudly.
	if p := checkRegressions(cur, base, "BenchmarkVanished", 20); len(p) != 1 {
		t.Fatalf("vanished benchmark not flagged: %v", p)
	}
	// Exact-name entries must not prefix-match unrelated benchmarks.
	if !regressMatch("BenchmarkMatMul", "BenchmarkMatMul/8x8x8") ||
		regressMatch("BenchmarkMatMul", "BenchmarkMatMulFused") {
		t.Fatal("regressMatch prefix semantics wrong")
	}
}

func TestReadBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	if err := os.WriteFile(path, []byte(`{"benchmarks":[{"name":"BenchmarkX","ns_per_op":42}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rs, err := readBaseline(path)
	if err != nil || len(rs) != 1 || rs[0].Name != "BenchmarkX" || rs[0].NsPerOp != 42 {
		t.Fatalf("readBaseline: %v %+v", err, rs)
	}
	if _, err := readBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing baseline not an error")
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(path); err == nil {
		t.Fatal("bad JSON baseline not an error")
	}
}
