// Package selnet_bench regenerates every table and figure of the paper's
// evaluation section as Go benchmarks. Each benchmark runs one experiment
// at QuickConfig scale and reports the paper's headline quantity as a
// custom metric, so `go test -bench=.` both exercises the full pipeline
// and prints the reproduced numbers. cmd/benchrunner runs the same
// experiments at FullConfig scale with complete table output.
package selnet_bench

import (
	"context"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"selnet/internal/distance"
	"selnet/internal/experiments"
	"selnet/internal/ingest"
	"selnet/internal/obs"
	"selnet/internal/selnet"
	"selnet/internal/serve"
	"selnet/internal/vecdata"
)

func quick() experiments.Config { return experiments.QuickConfig() }

// reportErrors attaches the SelNet row's errors as benchmark metrics.
func reportSelNetRow(b *testing.B, t experiments.AccuracyTable) {
	b.Helper()
	for _, r := range t.Rows {
		if r.Model == "SelNet" {
			b.ReportMetric(r.Test.MSE, "selnet-mse")
			b.ReportMetric(r.Test.MAE, "selnet-mae")
			b.ReportMetric(r.Test.MAPE, "selnet-mape")
		}
	}
}

func BenchmarkTable1AccuracyFasttextCos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.RunAccuracyTable(quick(), "fasttext-cos")
		reportSelNetRow(b, t)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable2AccuracyFasttextL2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.RunAccuracyTable(quick(), "fasttext-l2")
		reportSelNetRow(b, t)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable3AccuracyFaceCos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.RunAccuracyTable(quick(), "face-cos")
		reportSelNetRow(b, t)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable4AccuracyYouTubeCos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.RunAccuracyTable(quick(), "youtube-cos")
		reportSelNetRow(b, t)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable5Monotonicity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.RunMonotonicityTable(quick())
		for _, s := range t.Scores {
			if s.Model == "SelNet" {
				b.ReportMetric(s.Score, "selnet-mono-%")
			}
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable6Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.RunAblationTable(quick())
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable7EstimationTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.RunTimingTable(quick())
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable8ControlPoints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.RunControlPointSweep(quick())
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable9PartitionSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.RunPartitionSizeSweep(quick())
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable10PartitionMethods(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.RunPartitionMethodTable(quick())
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable11BetaThresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.RunBetaWorkloadTable(quick())
		reportSelNetRow(b, t)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFigure3CurveFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFigure3(quick())
		b.ReportMetric(r.PWLRMSE, "pwl-rmse")
		b.ReportMetric(r.DLNRMSE, "dln-rmse")
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

func BenchmarkFigure4ControlPoints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFigure4(quick())
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

func BenchmarkFigure5Updates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFigure5(quick(), "face-cos")
		if n := len(r.Points); n > 0 {
			b.ReportMetric(r.Points[n-1].MAPE, "final-mape")
		}
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// Design-choice ablations called out in DESIGN.md.

func BenchmarkAblationNorml2VsSoftmax(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.RunTauTransformAblation(quick())
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkAblationLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.RunLossAblation(quick())
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkAblationTraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.RunTrainingModeAblation(quick())
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// Per-model estimation micro-benchmarks (the Table 7 measurement at
// testing.B granularity).

func BenchmarkEstimateSelNet(b *testing.B)   { benchEstimate(b, "SelNet") }
func BenchmarkEstimateSelNetCT(b *testing.B) { benchEstimate(b, "SelNet-ct") }
func BenchmarkEstimateKDE(b *testing.B)      { benchEstimate(b, "KDE") }
func BenchmarkEstimateLSH(b *testing.B)      { benchEstimate(b, "LSH") }
func BenchmarkEstimateGBM(b *testing.B)      { benchEstimate(b, "LightGBM") }
func BenchmarkEstimateDNN(b *testing.B)      { benchEstimate(b, "DNN") }
func BenchmarkEstimateUMNN(b *testing.B)     { benchEstimate(b, "UMNN") }
func BenchmarkEstimateDLN(b *testing.B)      { benchEstimate(b, "DLN") }

// Serving-path benchmarks: the selestd coalescer (concurrent requests
// fused into batched compiled-plan passes across GOMAXPROCS lanes)
// against naive per-request Estimate calls, at >= 8 concurrent clients.
// Coalescing amortizes the per-request overhead across the batch and
// the lanes remove the single batcher goroutine as a ceiling, so ns/op
// should drop well below the naive arm's.

func servingNet() *selnet.Net {
	cfg := selnet.DefaultConfig()
	cfg.TMax = 1
	// Weights are random: estimation cost is independent of training.
	return selnet.NewNet(rand.New(rand.NewSource(1)), 16, cfg)
}

func servingQueries(n, dim int) [][]float64 {
	rng := rand.New(rand.NewSource(2))
	qs := make([][]float64, n)
	for i := range qs {
		qs[i] = make([]float64, dim)
		for j := range qs[i] {
			qs[i][j] = rng.Float64()
		}
	}
	return qs
}

// setClients makes RunParallel use at least n goroutines.
func setClients(b *testing.B, n int) {
	procs := runtime.GOMAXPROCS(0)
	p := n / procs
	if p*procs < n {
		p++
	}
	b.SetParallelism(p)
}

func BenchmarkServeCoalesced(b *testing.B) {
	net := servingNet()
	batcher := serve.NewBatcher(net, serve.BatcherConfig{
		MaxBatch: 32, FlushInterval: 500 * time.Microsecond, // Lanes: GOMAXPROCS
	})
	defer batcher.Close()
	queries := servingQueries(256, net.Dim())
	setClients(b, 8)
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := queries[i%len(queries)]
			if _, err := batcher.Submit(ctx, q, 0.5); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	st := batcher.Stats()
	if st.Batches > 0 {
		b.ReportMetric(float64(st.Requests)/float64(st.Batches), "reqs/batch")
	}
}

func BenchmarkServeNaive(b *testing.B) {
	net := servingNet()
	queries := servingQueries(256, net.Dim())
	setClients(b, 8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			net.Estimate(queries[i%len(queries)], 0.5)
			i++
		}
	})
}

// BenchmarkServeShadowSampled proves the shadow-scoring tap costs the
// serving path nothing: the loop is the inference hot path (compiled
// plan Estimate) plus the Offer tap at a 10% sample rate, while the
// oracle worker scores the sampled queries concurrently against an
// exact ground-truth scan. ReportAllocs counts allocations from every
// goroutine, so 0 allocs/op certifies the tap AND the async scoring
// pipeline (sampler, oracle, rolling aggregates, worst-N) — not just
// the unsampled fast path.
func BenchmarkServeShadowSampled(b *testing.B) {
	net := servingNet()
	queries := servingQueries(256, net.Dim())
	rng := rand.New(rand.NewSource(3))
	db := vecdata.SyntheticFasttext(rng, 500, net.Dim(), distance.Euclidean)
	sh := obs.NewShadow(obs.ShadowConfig{SampleRate: 0.1, QueueDepth: 1024})
	sh.SetOracle("bench", ingest.NewDBOracle(db, ingest.OracleConfig{}))
	defer sh.Close()

	// Warm up until the model's rolling rings exist, the worst-N list is
	// at capacity, and the plan pool is primed — allocations after this
	// point are regressions.
	for id := uint64(1); ; id++ {
		q := queries[int(id)%len(queries)]
		v := net.Estimate(q, 0.5)
		sh.Offer("bench", id, 0, q, 0.5, 1, v)
		if st, ok := sh.Accuracy().ModelStats("bench", 0); ok && st.Samples >= 64 {
			break
		}
		if id%1024 == 0 {
			time.Sleep(time.Millisecond) // let the worker drain
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		v := net.Estimate(q, 0.5)
		sh.Offer("bench", uint64(i+1), 0, q, 0.5, 1, v)
	}
	b.StopTimer()
	st := sh.Stats()
	b.ReportMetric(float64(st.Sampled), "sampled")
	b.ReportMetric(float64(st.Dropped), "dropped")
}

// BenchmarkIngestRetrainSwap measures the end-to-end update-to-visible
// latency of the ingest subsystem: one insert batch journaled through
// the pipeline, applied to the private database, shadow-retrained
// (δ_U forced to fire, capped incremental epochs), and hot-swapped into
// the registry. ns/op is the full journal->apply->retrain->swap cycle;
// the retrain dominates, so this is the number future PRs should drive
// down (cheaper relabelling, fewer epochs, faster tape).
func BenchmarkIngestRetrainSwap(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	db := vecdata.SyntheticFace(rng, 400, 8)
	wl := vecdata.GeometricWorkload(rng, db, 16, 4)
	cut := len(wl.Queries) * 3 / 4
	train, valid := wl.Queries[:cut], wl.Queries[cut:]
	cfg := selnet.Config{
		L: 8, EmbedDim: 8,
		AEHidden: []int{16}, AELatent: 4,
		TauHidden: []int{16}, MHidden: []int{16},
		TMax: wl.TMax, Lambda: 0.1, QueryDependentTau: true, NormEps: 1e-6,
	}
	net := selnet.NewNet(rng, db.Dim, cfg)
	tc := selnet.TrainConfig{Epochs: 2, Batch: 64, LR: 5e-3, HuberDelta: 1.345, LogEps: 1e-3, Seed: 1}
	net.Fit(tc, db, train, valid)

	reg := serve.NewRegistry(nil)
	if _, err := reg.Publish("bench", net, "bench"); err != nil {
		b.Fatal(err)
	}
	pipe := ingest.New(ingest.Config{
		Registry: reg,
		Train:    tc,
		// DeltaU < 0 forces a retrain+swap every cycle, so every
		// iteration measures the full update-to-visible path.
		Update: selnet.UpdateConfig{DeltaU: -1, Patience: 1, MaxEpochs: 2},
	})
	defer pipe.Close()
	// The pipeline owns its database copy; the benchmark keeps sampling
	// insert vectors from the original without racing the worker.
	if err := pipe.Attach("bench", net, db.Clone(), train, valid); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ins := make([][]float64, 5)
		for j := range ins {
			ins[j] = vecdata.SampleLike(rng, db, 0.05)
		}
		ack, err := pipe.Enqueue("bench", ins, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !pipe.WaitApplied("bench", ack.Seq) {
			b.Fatal("batch never applied")
		}
	}
	b.StopTimer()
	m, _ := reg.Get("bench")
	if got, want := m.Generation, uint64(b.N+1); got != want {
		b.Fatalf("generation %d after %d updates, want %d", got, b.N, want)
	}
	st := pipe.UpdaterStats()["bench"]
	b.ReportMetric(float64(st.Retrained), "swaps")
}

// WAL benchmarks: the durability tax of the update path. Append is one
// encoded record plus a (group-committed) fsync — the latency a client
// pays between POST and 202 with -journal-dir set; Replay is the boot-
// time scan that recovers entries after a crash.

func walBenchEntry(seq uint64) ingest.Entry {
	ins := make([][]float64, 5)
	for i := range ins {
		v := make([]float64, 16)
		for j := range v {
			v[j] = float64(seq) + float64(i*16+j)/100
		}
		ins[i] = v
	}
	return ingest.Entry{Seq: seq, At: time.Unix(0, int64(seq)), Insert: ins}
}

func BenchmarkWALAppend(b *testing.B) {
	w, _, err := ingest.OpenWAL(filepath.Join(b.TempDir(), "bench.wal"), "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(walBenchEntry(uint64(i + 1))); err != nil {
			b.Fatal(err)
		}
		if err := w.Sync(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := w.Stats()
	b.SetBytes(st.Size / int64(b.N))
	b.ReportMetric(float64(st.Size)/float64(b.N), "bytes/record")
}

func BenchmarkWALReplay(b *testing.B) {
	const records = 1000
	path := filepath.Join(b.TempDir(), "bench.wal")
	w, _, err := ingest.OpenWAL(path, "bench")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if err := w.Append(walBenchEntry(uint64(i + 1))); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		b.Fatal(err)
	}
	size := w.Stats().Size
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, rec, err := ingest.OpenWAL(path, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if len(rec.Entries) != records {
			b.Fatalf("recovered %d records, want %d", len(rec.Entries), records)
		}
		w.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

func benchEstimate(b *testing.B, model string) {
	cfg := quick()
	cfg.Epochs = 3 // estimation speed does not depend on training quality
	env := experiments.NewEnv(cfg, "fasttext-cos")
	est := experiments.BuildModel(cfg, env, model)
	if est == nil {
		b.Skipf("%s inapplicable", model)
	}
	queries := env.Test
	// Warm up so plan-backed estimators compile outside the measurement;
	// their steady state is allocation-free (see -benchmem). Every test
	// query runs once: a partitioned model compiles one plan per cluster
	// head, lazily, on the first query routed to that cluster.
	for _, q := range queries {
		est.Estimate(q.X, q.T)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		est.Estimate(q.X, q.T)
	}
}
